#include "obs/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>
#include <tuple>

#include "obs/analyze.hpp"

namespace multihit::obs {

namespace {

/// Runaway guard: a cadence far finer than the run is an options bug, not a
/// monitoring request.
constexpr std::uint64_t kMaxBoundaries = 4'000'000;

bool is_rank_lane(std::uint32_t lane) noexcept { return lane < kEngineLane; }

const std::string* find_arg(const TraceEvent& ev, std::string_view key) {
  for (const auto& [k, v] : ev.args) {
    if (k == key) return &v;
  }
  return nullptr;
}

double median_of(std::vector<double> values) {
  const std::size_t n = values.size();
  const std::size_t mid = n / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  if (n % 2 == 1) return values[mid];
  const double hi = values[mid];
  std::nth_element(values.begin(), values.begin() + mid - 1, values.begin() + mid);
  return (values[mid - 1] + hi) / 2.0;
}

void validate_options(const MonitorOptions& o) {
  const auto bad = [](const std::string& what) { throw MonitorError("monitor options: " + what); };
  if (!(o.sample_every > 0.0) || !std::isfinite(o.sample_every)) {
    bad("sample_every must be positive and finite");
  }
  if (o.window_samples < 2) bad("window_samples must be at least 2");
  if (!(o.heartbeat_timeout > 0.0)) bad("heartbeat_timeout must be positive");
  if (!(o.straggler_ratio > 1.0)) bad("straggler_ratio must exceed 1");
  if (!(o.collapse_fraction > 0.0) || o.collapse_fraction >= 1.0) {
    bad("collapse_fraction must be in (0, 1)");
  }
  if (!(o.comm_overhead_threshold > 0.0)) bad("comm_overhead_threshold must be positive");
  // A drop_window narrower than the cadence degrades gracefully (the rate
  // check spans one full sampling interval), so only positivity is required.
  if (!(o.drop_window > 0.0)) bad("drop_window must be positive");
  if (!(o.queue_saturation_fraction > 0.0)) bad("queue_saturation_fraction must be positive");
  if (!(o.starvation_ratio > 1.0)) bad("starvation_ratio must exceed 1");
  if (!(o.starvation_min_age > 0.0)) bad("starvation_min_age must be positive");
  // thrash_window wider than the retained history degrades gracefully
  // (value_at clamps to the oldest snapshot), and the default cluster
  // cadence retains far less than 60 s — so only positivity is required.
  if (!(o.thrash_window > 0.0)) bad("thrash_window must be positive");
  if (o.thrash_rebuilds == 0) bad("thrash_rebuilds must be at least 1");
  if (!(o.fast_burn_threshold > 0.0)) bad("fast_burn_threshold must be positive");
  if (!(o.slow_burn_threshold > 0.0)) bad("slow_burn_threshold must be positive");
  if (o.burn_min_events == 0) bad("burn_min_events must be at least 1");
  // Burn windows must fit inside the retained ring, or a burn older than the
  // window would be silently under-counted instead of detected. (SLO specs
  // are opt-in, so serve-scale windows never constrain cluster monitoring.)
  const double retained = o.sample_every * static_cast<double>(o.window_samples - 1);
  for (const SloObjective& s : o.slo) {
    if (s.kind != SloKind::kBudget) continue;
    if (!(s.window > 0.0) || !(s.fast_window > 0.0) || s.fast_window >= s.window) {
      bad("slo budget for '" + s.tenant + "' needs 0 < fast window < window");
    }
    if (s.window > retained) {
      bad("slo budget window of " + json_number(s.window) +
          " s exceeds the retained history of " + json_number(retained) +
          " s (window_samples * sample_every); raise --window-samples");
    }
  }
  for (const AlertRule& r : o.rules) {
    if (r.name.empty() || r.series.empty()) bad("rule needs a name and a series");
    if ((r.kind == RuleKind::kRate || r.kind == RuleKind::kAbsence) && !(r.window > 0.0)) {
      bad("rule '" + r.name + "' needs a positive window");
    }
    if (r.hold == 0) bad("rule '" + r.name + "' hold must be at least 1");
  }
}

/// Lifetime stats + ring window for one (series, lane).
struct SeriesState {
  std::uint64_t samples = 0;
  double last_at = 0.0, last = 0.0, min = 0.0, max = 0.0;
  std::vector<std::pair<double, double>> ring;  ///< boundary snapshots, oldest first
  bool truncated = false;                       ///< ring has dropped old snapshots

  /// Value at the newest boundary <= cutoff. Before the series' first
  /// snapshot the value is 0 (counters count from zero); once the ring has
  /// truncated, requests older than it clamp to the oldest retained value.
  double value_at(double cutoff) const {
    for (auto it = ring.rbegin(); it != ring.rend(); ++it) {
      if (it->first <= cutoff) return it->second;
    }
    return truncated && !ring.empty() ? ring.front().second : 0.0;
  }
};

using SeriesKey = std::pair<std::string, std::uint32_t>;  // (name, lane)

/// Cumulative overlap of a span set with [0, t], advanced monotonically.
struct CumTimeline {
  std::vector<std::pair<double, double>> spans;  ///< sorted by begin
  std::size_t next = 0;
  std::vector<std::pair<double, double>> active;
  double done = 0.0;

  double at(double t) {
    while (next < spans.size() && spans[next].first <= t) active.push_back(spans[next++]);
    double sum = 0.0;
    std::size_t keep = 0;
    for (const auto& span : active) {
      if (span.second <= t) {
        done += span.second - span.first;
      } else {
        sum += t - span.first;
        active[keep++] = span;
      }
    }
    active.resize(keep);
    return done + sum;
  }
};

const char* cmp_name(RuleCmp cmp) { return cmp == RuleCmp::kAbove ? "above" : "below"; }

const char* kind_name(RuleKind kind) {
  switch (kind) {
    case RuleKind::kThreshold:
      return "threshold";
    case RuleKind::kRate:
      return "rate";
    case RuleKind::kAbsence:
      return "absence";
    case RuleKind::kImbalance:
      return "imbalance";
  }
  return "?";
}

bool compare(RuleCmp cmp, double value, double against) {
  return cmp == RuleCmp::kAbove ? value > against : value < against;
}

/// The built-in detector names — the incident classes score_incidents knows.
/// The serve detectors key off serve.* counters, so they are inert on
/// cluster traces and never dilute the fault-injection scoring.
const char* const kBuiltinRules[] = {"dead_rank",        "straggler",
                                     "message_drop",     "comm_overhead",
                                     "gpu_collapse",     "job_abort",
                                     "queue_saturation", "tenant_starvation",
                                     "slo_fast_burn",    "slo_slow_burn",
                                     "cache_thrash"};

bool is_builtin_rule(const std::string& name) {
  for (const char* b : kBuiltinRules) {
    if (name == b) return true;
  }
  return false;
}

/// True when every selector label appears verbatim among the series' labels.
bool labels_match(const SeriesLabels& want, const SeriesLabels& have) {
  for (const auto& w : want) {
    bool found = false;
    for (const auto& h : have) {
      if (h == w) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

/// The "tenant" label value ("" when absent).
std::string tenant_label(const SeriesLabels& labels) {
  for (const auto& [k, v] : labels) {
    if (k == "tenant") return v;
  }
  return {};
}

}  // namespace

std::vector<AlertRule> parse_rules(std::string_view text) {
  std::vector<AlertRule> rules;
  std::istringstream lines{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const auto fail = [&](const std::string& what) {
      throw MonitorError("rules line " + std::to_string(line_no) + ": " + what);
    };
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream words(line);
    std::vector<std::string> tok;
    for (std::string w; words >> w;) tok.push_back(w);
    if (tok.empty()) continue;
    if (tok[0] != "rule" || tok.size() < 4) {
      fail("expected: rule NAME threshold|rate|absence|imbalance SERIES ...");
    }
    AlertRule rule;
    rule.name = tok[1];
    const std::string& kind = tok[2];
    // The SERIES token may carry a label selector ("serve.wait_age{tenant=gold}");
    // a malformed selector is a parse error naming this line, not a rule that
    // silently matches nothing.
    try {
      auto parts = split_series_labels(tok[3]);
      rule.series = std::move(parts.first);
      rule.labels = std::move(parts.second);
    } catch (const SloError& e) {
      fail(e.what());
    }
    const auto parse_cmp = [&](const std::string& word) {
      if (word == "above") return RuleCmp::kAbove;
      if (word == "below") return RuleCmp::kBelow;
      fail("expected above|below, got '" + word + "'");
      return RuleCmp::kAbove;  // unreachable
    };
    const auto parse_num = [&](const std::string& word) {
      char* end = nullptr;
      const double v = std::strtod(word.c_str(), &end);
      if (end != word.c_str() + word.size() || !std::isfinite(v)) {
        fail("expected a number, got '" + word + "'");
      }
      return v;
    };
    if (kind == "threshold") {
      if (tok.size() != 6 && tok.size() != 8) {
        fail("expected: rule NAME threshold SERIES above|below VALUE [hold N]");
      }
      rule.kind = RuleKind::kThreshold;
      rule.cmp = parse_cmp(tok[4]);
      rule.value = parse_num(tok[5]);
      if (tok.size() == 8) {
        if (tok[6] != "hold") fail("expected 'hold', got '" + tok[6] + "'");
        const double n = parse_num(tok[7]);
        if (n < 1.0 || n != std::floor(n)) fail("hold must be a positive integer");
        rule.hold = static_cast<std::uint32_t>(n);
      }
    } else if (kind == "rate") {
      if (tok.size() != 8 || tok[6] != "window") {
        fail("expected: rule NAME rate SERIES above|below DELTA window SECONDS");
      }
      rule.kind = RuleKind::kRate;
      rule.cmp = parse_cmp(tok[4]);
      rule.value = parse_num(tok[5]);
      rule.window = parse_num(tok[7]);
      if (!(rule.window > 0.0)) fail("window must be positive");
    } else if (kind == "absence") {
      if (tok.size() != 6 || tok[4] != "window") {
        fail("expected: rule NAME absence SERIES window SECONDS");
      }
      rule.kind = RuleKind::kAbsence;
      rule.window = parse_num(tok[5]);
      if (!(rule.window > 0.0)) fail("window must be positive");
    } else if (kind == "imbalance") {
      if (tok.size() != 6) fail("expected: rule NAME imbalance SERIES above|below RATIO");
      rule.kind = RuleKind::kImbalance;
      rule.cmp = parse_cmp(tok[4]);
      rule.value = parse_num(tok[5]);
    } else {
      fail("unknown rule kind '" + kind + "'");
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

HealthReport monitor_trace(const Tracer& trace, const MonitorOptions& options) {
  validate_options(options);

  // --- gather the observation streams, in simulated-time order -------------
  struct CounterObs {
    double at;
    std::uint32_t lane;
    const std::string* name;
    double value;
  };
  std::vector<CounterObs> counter_obs;
  counter_obs.reserve(trace.counters().size());
  double makespan = 0.0;
  std::set<std::uint32_t> rank_lanes_seen;
  for (const CounterSample& c : trace.counters()) {
    counter_obs.push_back({c.at, c.lane, &c.name, c.value});
    makespan = std::max(makespan, c.at);
    if (is_rank_lane(c.lane)) rank_lanes_seen.insert(c.lane);
  }
  std::stable_sort(counter_obs.begin(), counter_obs.end(),
                   [](const CounterObs& a, const CounterObs& b) { return a.at < b.at; });

  struct IterWindow {
    std::int64_t index;
    double begin, end;
  };
  std::vector<IterWindow> windows;
  std::map<std::int64_t, std::map<std::uint32_t, double>> iter_compute;
  std::vector<double> restarts;
  CumTimeline comm_time, busy_time;
  std::map<std::uint32_t, std::vector<const TraceEvent*>> lane_spans;

  for (const TraceEvent& ev : trace.events()) {
    // The injector's instants are the labeled ground truth; detection works
    // from operational telemetry alone, so they are invisible here — they do
    // not even extend the monitored horizon.
    if (ev.category == "fault") continue;
    makespan = std::max(makespan, ev.end);
    if (!ev.instant) lane_spans[ev.lane].push_back(&ev);
    if (ev.lane == kEngineLane) {
      if (!ev.instant && ev.name == "greedy_iteration") {
        const std::string* arg = find_arg(ev, "iteration");
        if (arg) windows.push_back({std::atoll(arg->c_str()), ev.begin, ev.end});
      } else if (ev.instant && ev.name == "job_restart") {
        restarts.push_back(ev.begin);
      }
      continue;
    }
    if (!is_rank_lane(ev.lane)) continue;
    rank_lanes_seen.insert(ev.lane);
    if (ev.instant) continue;
    // Busy time counts top-level phase spans; "gpu" kernels nest inside
    // their compute span and would double-count.
    if (ev.category != "gpu") busy_time.spans.emplace_back(ev.begin, ev.end);
    if (ev.category == "comm") comm_time.spans.emplace_back(ev.begin, ev.end);
    if (ev.name == "compute" && ev.category == "compute") {
      const std::string* arg = find_arg(ev, "iteration");
      if (arg) iter_compute[std::atoll(arg->c_str())][ev.lane] += ev.duration();
    }
  }
  for (const FlowEdge& f : trace.flows()) makespan = std::max(makespan, f.to_time);
  const auto by_begin = [](const std::pair<double, double>& a,
                           const std::pair<double, double>& b) { return a.first < b.first; };
  std::stable_sort(comm_time.spans.begin(), comm_time.spans.end(), by_begin);
  std::stable_sort(busy_time.spans.begin(), busy_time.spans.end(), by_begin);
  std::stable_sort(windows.begin(), windows.end(),
                   [](const IterWindow& a, const IterWindow& b) { return a.end < b.end; });
  std::sort(restarts.begin(), restarts.end());

  const double dt = options.sample_every;
  std::uint64_t boundaries = 0;
  if (makespan > 0.0) {
    const double exact = makespan / dt;
    if (exact > static_cast<double>(kMaxBoundaries)) {
      throw MonitorError("sample_every of " + json_number(dt) + " s over a " +
                         json_number(makespan) + " s run exceeds " +
                         std::to_string(kMaxBoundaries) + " boundaries");
    }
    boundaries = static_cast<std::uint64_t>(std::ceil(exact));
    if (static_cast<double>(boundaries) * dt < makespan) ++boundaries;
  }

  HealthReport report;
  report.options = options;
  report.makespan = makespan;
  report.boundaries = boundaries;
  report.rank_lanes = static_cast<std::uint32_t>(rank_lanes_seen.size());

  // --- incident bookkeeping ------------------------------------------------
  const auto window_at = [&](double t) -> std::int64_t {
    for (const IterWindow& w : windows) {
      if (w.begin <= t && t <= w.end) return w.index;
    }
    return -1;
  };
  const auto enclosing_span = [&](std::uint32_t lane, double t) -> std::string {
    const auto it = lane_spans.find(lane);
    if (it == lane_spans.end()) return {};
    const TraceEvent* best = nullptr;
    for (const TraceEvent* ev : it->second) {
      if (ev->begin <= t && t <= ev->end) {
        if (!best || ev->begin > best->begin ||
            (ev->begin == best->begin && ev->end < best->end)) {
          best = ev;
        }
      }
    }
    return best ? best->name : std::string{};
  };

  // Incident identity is (rule, lane, tenant): per-tenant serve detectors
  // share the scheduler lane, so the tenant must discriminate or one tenant's
  // clear would close another tenant's incident.
  std::map<std::tuple<std::string, std::uint32_t, std::string>, std::size_t> open;
  const auto set_condition = [&](const std::string& rule, const char* kind,
                                 std::uint32_t lane, const std::string& tenant,
                                 bool breached, double value, double t,
                                 std::int64_t iter_hint) {
    const auto key = std::make_tuple(rule, lane, tenant);
    const auto it = open.find(key);
    if (breached && it == open.end()) {
      Incident inc;
      inc.rule = rule;
      inc.kind = kind;
      inc.lane = lane;
      inc.tenant = tenant;
      inc.fired = t;
      inc.cleared = t;
      inc.open = true;
      inc.value = value;
      inc.span = enclosing_span(lane, t);
      inc.iteration = iter_hint >= 0 ? iter_hint : window_at(t);
      open.emplace(key, report.incidents.size());
      report.incidents.push_back(std::move(inc));
    } else if (!breached && it != open.end()) {
      report.incidents[it->second].cleared = t;
      report.incidents[it->second].open = false;
      open.erase(it);
    }
  };

  // --- sampler + detector state --------------------------------------------
  std::map<SeriesKey, SeriesState> series;
  std::size_t obs_ptr = 0;

  // Decompose label-suffixed series names once per distinct name. Serve
  // counters are well-formed by construction; any other name containing '{'
  // (a user counter, say) is lenient here — treated as an unlabeled base —
  // because strictness belongs to the rule *parser*, not to telemetry that
  // merely flows past the detectors.
  std::map<std::string, std::pair<std::string, SeriesLabels>> split_cache;
  const auto split_of =
      [&](const std::string& name) -> const std::pair<std::string, SeriesLabels>& {
    auto it = split_cache.find(name);
    if (it == split_cache.end()) {
      std::pair<std::string, SeriesLabels> parts{name, {}};
      try {
        parts = split_series_labels(name);
      } catch (const SloError&) {
      }
      it = split_cache.emplace(name, std::move(parts)).first;
    }
    return it->second;
  };

  // straggler: per-lane cross-iteration baseline of fleet-normalized compute
  // ratios. The baseline resets whenever the set of computing lanes changes
  // (a crash re-partition is a new schedule regime) and the first iteration
  // of each regime is warm-up, so persistent schedule imbalance (the
  // equi-distance case) never trips the detector — only a *change* does.
  std::map<std::uint32_t, std::vector<double>> straggler_baseline;
  std::set<std::uint32_t> straggler_active;
  struct LaneFlag {
    bool breached = false;  ///< verdict of the newest finalized iteration
    double value = 0.0;
    std::int64_t iteration = -1;
    /// Any breach among windows finalized since the last boundary. The
    /// cadence can be coarser than the iteration rate, so without the latch
    /// a straggle that starts and ends inside one sampling interval would
    /// never reach a boundary.
    bool latched = false;
    double latched_value = 0.0;
    std::int64_t latched_iteration = -1;
  };
  std::map<std::uint32_t, LaneFlag> straggler_state;
  std::size_t next_window = 0;
  std::size_t next_restart = 0;

  // Keyed by (rule index, matched series key): two labeled variants of one
  // base series on the same lane must hold their breach runs independently.
  std::map<std::pair<std::size_t, SeriesKey>, std::uint32_t> hold_counts;

  double t = 0.0;
  for (std::uint64_t k = 1; k <= boundaries; ++k) {
    t = static_cast<double>(k) * dt;

    // Ingest raw counter samples up to this boundary.
    while (obs_ptr < counter_obs.size() && counter_obs[obs_ptr].at <= t) {
      const CounterObs& ob = counter_obs[obs_ptr++];
      SeriesState& st = series[{*ob.name, ob.lane}];
      if (st.samples == 0) {
        st.min = st.max = ob.value;
      } else {
        st.min = std::min(st.min, ob.value);
        st.max = std::max(st.max, ob.value);
      }
      ++st.samples;
      st.last = ob.value;
      st.last_at = ob.at;
    }
    // Boundary snapshot into each ring.
    for (auto& [key, st] : series) {
      if (st.ring.size() == options.window_samples) {
        st.ring.erase(st.ring.begin());
        st.truncated = true;
      }
      st.ring.emplace_back(t, st.last);
    }

    // Finalize greedy iterations whose window closed by this boundary.
    while (next_window < windows.size() && windows[next_window].end <= t) {
      const IterWindow& w = windows[next_window++];
      const auto durs_it = iter_compute.find(w.index);
      if (durs_it == iter_compute.end()) continue;
      const std::map<std::uint32_t, double>& durs = durs_it->second;
      std::set<std::uint32_t> active;
      for (const auto& [lane, d] : durs) {
        if (d > 0.0) active.insert(lane);
      }
      const auto ratio_of = [&](std::uint32_t lane) {
        double others = 0.0;
        for (const std::uint32_t l : active) {
          if (l != lane) others += durs.at(l);
        }
        others /= static_cast<double>(active.size() - 1);
        return others > 0.0 ? durs.at(lane) / others : 0.0;
      };
      if (active != straggler_active) {
        // New regime: drop history, clear any open incidents, record this
        // iteration as the fresh baseline and skip detection (warm-up).
        straggler_baseline.clear();
        for (auto& [lane, flag] : straggler_state) flag = LaneFlag{};
        straggler_active = active;
        if (active.size() >= 2) {
          for (const std::uint32_t lane : active) {
            straggler_baseline[lane].push_back(ratio_of(lane));
          }
        }
        continue;
      }
      if (active.size() < 2) continue;
      for (const std::uint32_t lane : active) {
        const double r = ratio_of(lane);
        std::vector<double>& hist = straggler_baseline[lane];
        const bool breached =
            !hist.empty() &&
            r >= options.straggler_ratio * std::max(1.0, median_of(hist));
        LaneFlag& flag = straggler_state[lane];
        flag.breached = breached;
        flag.value = r;
        flag.iteration = w.index;
        if (breached && !flag.latched) {
          flag.latched = true;
          flag.latched_value = r;
          flag.latched_iteration = w.index;
        }
        // Anomalous iterations stay out of the baseline, so a straggle
        // burst cannot talk its way into normality.
        if (!breached) hist.push_back(r);
      }
    }

    if (options.builtin_detectors) {
      // dead_rank: heartbeat silence relative to the fleet's newest
      // heartbeat. Alive ranks all heartbeat at each collective's completion
      // time, so a live lane's gap is exactly zero.
      double fleet_last = -1.0;
      const SeriesKey hb_lo{"heartbeat", 0};
      const SeriesKey hb_hi{"heartbeat", kEngineLane};
      for (auto it = series.lower_bound(hb_lo); it != series.end() && it->first < hb_hi;
           ++it) {
        fleet_last = std::max(fleet_last, it->second.last_at);
      }
      if (fleet_last >= 0.0) {
        for (auto it = series.lower_bound(hb_lo); it != series.end() && it->first < hb_hi;
             ++it) {
          const double gap = fleet_last - it->second.last_at;
          set_condition("dead_rank", "detector", it->first.second, {},
                        gap > options.heartbeat_timeout, gap, t, -1);
        }
      }

      // straggler: the per-iteration deviation flags computed above. A latch
      // set by an interval-interior breach fires this boundary and (if the
      // newest iteration is clean again) clears at the next one.
      for (auto& [lane, flag] : straggler_state) {
        const bool breached = flag.latched || flag.breached;
        set_condition("straggler", "detector", lane, {}, breached,
                      flag.latched ? flag.latched_value : flag.value, t,
                      flag.latched ? flag.latched_iteration : flag.iteration);
        flag.latched = false;
      }

      // message_drop: the retransmit counter grew within the trailing window.
      const SeriesKey rt_lo{"comm_retransmits", 0};
      const SeriesKey rt_hi{"comm_retransmits", kEngineLane};
      for (auto it = series.lower_bound(rt_lo); it != series.end() && it->first < rt_hi;
           ++it) {
        const double delta = it->second.last - it->second.value_at(t - options.drop_window);
        set_condition("message_drop", "detector", it->first.second, {}, delta > 0.0, delta,
                      t, -1);
      }

      // comm_overhead: cumulative comm fraction of busy time (Fig. 8).
      const double busy = busy_time.at(t);
      const double comm = comm_time.at(t);
      const double frac = busy > 0.0 ? comm / busy : 0.0;
      set_condition("comm_overhead", "detector", kEngineLane, {},
                    busy > 0.0 && frac > options.comm_overhead_threshold, frac, t, -1);

      // gpu_collapse: a computing lane whose DRAM throughput sits far below
      // the fleet median — the telemetry shadow of a throttled or straggling
      // device. Idle lanes (value 0) are out of both the median and the
      // check, so ordinary end-of-iteration stagger never fires.
      const SeriesKey dr_lo{"gpu_dram_throughput", 0};
      const SeriesKey dr_hi{"gpu_dram_throughput", kEngineLane};
      std::vector<std::pair<std::uint32_t, double>> computing;
      for (auto it = series.lower_bound(dr_lo); it != series.end() && it->first < dr_hi;
           ++it) {
        if (it->second.last > 0.0) computing.emplace_back(it->first.second, it->second.last);
      }
      double med = 0.0;
      if (computing.size() >= 2) {
        std::vector<double> values;
        values.reserve(computing.size());
        for (const auto& [lane, v] : computing) values.push_back(v);
        med = median_of(std::move(values));
      }
      for (auto it = series.lower_bound(dr_lo); it != series.end() && it->first < dr_hi;
           ++it) {
        const double v = it->second.last;
        const bool breached = computing.size() >= 2 && v > 0.0 && med > 0.0 &&
                              v < options.collapse_fraction * med;
        set_condition("gpu_collapse", "detector", it->first.second, {}, breached,
                      med > 0.0 ? v / med : 0.0, t, -1);
      }

      // job_abort: the driver's job_restart instant (it genuinely knows the
      // allocation bounced — that is operational telemetry, not ground
      // truth). Fires for exactly one boundary per restart.
      std::uint32_t bounced = 0;
      while (next_restart < restarts.size() && restarts[next_restart] <= t) {
        ++next_restart;
        ++bounced;
      }
      set_condition("job_abort", "detector", kEngineLane, {}, bounced > 0,
                    static_cast<double>(bounced), t, -1);

      // --- serve-layer detectors -------------------------------------------
      // These key off the serve scheduler's (possibly label-suffixed)
      // counters; cluster traces never emit serve.* series, so on them every
      // check below is a no-op.

      // queue_saturation: the admission queue pinned at (a fraction of) its
      // declared capacity. Needs the serve.queue_capacity counter the
      // service emits once at t=0.
      const SeriesKey qd_lo{"serve.queue_depth", 0};
      for (auto it = series.lower_bound(qd_lo);
           it != series.end() && it->first.first == "serve.queue_depth"; ++it) {
        const auto cap_it = series.find({"serve.queue_capacity", it->first.second});
        const double cap = cap_it != series.end() ? cap_it->second.last : 0.0;
        const double depth = it->second.last;
        set_condition("queue_saturation", "detector", it->first.second, {},
                      cap > 0.0 && depth >= options.queue_saturation_fraction * cap,
                      cap > 0.0 ? depth / cap : 0.0, t, -1);
      }

      // tenant_starvation: one tenant's oldest admitted-but-not-scheduled
      // job has aged far past the *other* tenants' mean wait age. The
      // fleet-relative baseline is the point — a global backlog ages every
      // tenant together and stays silent; only asymmetry fires.
      std::map<std::uint32_t, std::vector<std::pair<std::string, double>>> waits;
      for (const auto& [key, st] : series) {
        const auto& parts = split_of(key.first);
        if (parts.first != "serve.wait_age") continue;
        waits[key.second].emplace_back(tenant_label(parts.second), st.last);
      }
      for (const auto& [lane, entries] : waits) {
        for (std::size_t i = 0; i < entries.size(); ++i) {
          double others = 0.0;
          for (std::size_t j = 0; j < entries.size(); ++j) {
            if (j != i) others += entries[j].second;
          }
          const bool enough = entries.size() >= 2;
          const double mean_others =
              enough ? others / static_cast<double>(entries.size() - 1) : 0.0;
          const double age = entries[i].second;
          set_condition("tenant_starvation", "detector", lane, entries[i].first,
                        enough && age >= options.starvation_min_age &&
                            age > options.starvation_ratio * mean_others,
                        age, t, -1);
        }
      }

      // slo_fast_burn / slo_slow_burn: windowed bad fraction over budget,
      // the SRE multi-window pattern on the simulated clock. Driven by the
      // cumulative serve.slo_total / serve.slo_bad counters plus the budget
      // objectives handed in via options.slo (first matching objective per
      // tenant). A window needs burn_min_events resolved requests before it
      // can fire, so one stray rejection is not a burn.
      if (!options.slo.empty()) {
        for (auto it = series.begin(); it != series.end(); ++it) {
          const auto& parts = split_of(it->first.first);
          if (parts.first != "serve.slo_total") continue;
          const std::string tenant = tenant_label(parts.second);
          const SloObjective* budget = nullptr;
          for (const SloObjective& o : options.slo) {
            if (o.kind != SloKind::kBudget) continue;
            if (o.tenant == "*" || o.tenant == tenant) {
              budget = &o;
              break;
            }
          }
          if (!budget) continue;
          const SeriesState& total = it->second;
          const auto bad_it =
              series.find({series_with_labels("serve.slo_bad", parts.second),
                           it->first.second});
          const SeriesState* bad = bad_it != series.end() ? &bad_it->second : nullptr;
          const auto burn_over = [&](double window) {
            const double dtotal = total.last - total.value_at(t - window);
            if (dtotal < static_cast<double>(options.burn_min_events)) return 0.0;
            const double dbad = bad ? bad->last - bad->value_at(t - window) : 0.0;
            return (dbad / dtotal) / budget->target;
          };
          const double fast = burn_over(budget->fast_window);
          const double slow = burn_over(budget->window);
          set_condition("slo_fast_burn", "detector", it->first.second, tenant,
                        fast >= options.fast_burn_threshold, fast, t, -1);
          set_condition("slo_slow_burn", "detector", it->first.second, tenant,
                        slow >= options.slow_burn_threshold, slow, t, -1);
        }
      }

      // cache_thrash: invalidation-driven dataset rebuilds clustering inside
      // the trailing window — the cache is being churned faster than it can
      // amortize.
      const SeriesKey cr_lo{"serve.cache_rebuilds", 0};
      for (auto it = series.lower_bound(cr_lo);
           it != series.end() && it->first.first == "serve.cache_rebuilds"; ++it) {
        const double delta = it->second.last - it->second.value_at(t - options.thrash_window);
        set_condition("cache_thrash", "detector", it->first.second, {},
                      delta >= static_cast<double>(options.thrash_rebuilds), delta, t, -1);
      }
    }

    // User rules, in declaration order. A rule matches every series whose
    // *base* name equals the rule's SERIES and whose labels are a superset of
    // the rule's selector (an unlabeled rule over "serve.wait_age" spans all
    // tenant variants). Label-suffixed names do not sort adjacent to their
    // base, so rules scan the whole series map — it is small.
    std::vector<std::pair<const SeriesKey*, const SeriesState*>> matched;
    for (std::size_t ri = 0; ri < options.rules.size(); ++ri) {
      const AlertRule& rule = options.rules[ri];
      matched.clear();
      for (const auto& [key, st] : series) {
        const auto& parts = split_of(key.first);
        if (parts.first != rule.series) continue;
        if (!labels_match(rule.labels, parts.second)) continue;
        matched.emplace_back(&key, &st);
      }
      const auto tenant_of = [&](const SeriesKey& key) {
        return tenant_label(split_of(key.first).second);
      };
      switch (rule.kind) {
        case RuleKind::kThreshold: {
          for (const auto& [key, st] : matched) {
            const bool breach = compare(rule.cmp, st->last, rule.value);
            std::uint32_t& run = hold_counts[{ri, *key}];
            run = breach ? run + 1 : 0;
            set_condition(rule.name, kind_name(rule.kind), key->second, tenant_of(*key),
                          run >= rule.hold, st->last, t, -1);
          }
          break;
        }
        case RuleKind::kRate: {
          for (const auto& [key, st] : matched) {
            const double delta = st->last - st->value_at(t - rule.window);
            set_condition(rule.name, kind_name(rule.kind), key->second, tenant_of(*key),
                          compare(rule.cmp, delta, rule.value), delta, t, -1);
          }
          break;
        }
        case RuleKind::kAbsence: {
          double fleet_last = -1.0;
          for (const auto& [key, st] : matched) {
            fleet_last = std::max(fleet_last, st->last_at);
          }
          if (fleet_last < 0.0) break;
          for (const auto& [key, st] : matched) {
            const double gap = fleet_last - st->last_at;
            set_condition(rule.name, kind_name(rule.kind), key->second, tenant_of(*key),
                          gap > rule.window, gap, t, -1);
          }
          break;
        }
        case RuleKind::kImbalance: {
          for (const auto& [key, st] : matched) {
            double others = 0.0;
            for (const auto& [okey, ost] : matched) {
              if (okey != key) others += ost->last;
            }
            const bool enough = matched.size() >= 2;
            others = enough ? others / static_cast<double>(matched.size() - 1) : 0.0;
            const double ratio = others > 0.0 ? st->last / others : 0.0;
            set_condition(rule.name, kind_name(rule.kind), key->second, tenant_of(*key),
                          enough && others > 0.0 && compare(rule.cmp, ratio, rule.value),
                          ratio, t, -1);
          }
          break;
        }
      }
    }
  }

  // Whatever is still firing at the end of telemetry stays open, clear time
  // pinned to the final boundary.
  for (const auto& [key, index] : open) report.incidents[index].cleared = t;

  report.series.reserve(series.size());
  for (const auto& [key, st] : series) {
    SeriesStat stat;
    stat.series = key.first;
    stat.lane = key.second;
    stat.samples = st.samples;
    stat.last_at = st.last_at;
    stat.min = st.min;
    stat.max = st.max;
    stat.last = st.last;
    stat.window = st.ring;
    report.series.push_back(std::move(stat));
  }
  return report;
}

JsonValue health_report(const HealthReport& report) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", JsonValue(kHealthSchema));
  doc.set("sample_every_seconds", JsonValue(report.options.sample_every));
  doc.set("window_samples", JsonValue(static_cast<double>(report.options.window_samples)));
  doc.set("boundaries", JsonValue(static_cast<double>(report.boundaries)));
  doc.set("makespan_seconds", JsonValue(report.makespan));
  doc.set("rank_lanes", JsonValue(static_cast<double>(report.rank_lanes)));

  JsonValue detectors = JsonValue::object();
  detectors.set("builtin", JsonValue(report.options.builtin_detectors));
  detectors.set("heartbeat_timeout", JsonValue(report.options.heartbeat_timeout));
  detectors.set("straggler_ratio", JsonValue(report.options.straggler_ratio));
  detectors.set("collapse_fraction", JsonValue(report.options.collapse_fraction));
  detectors.set("comm_overhead_threshold",
                JsonValue(report.options.comm_overhead_threshold));
  detectors.set("drop_window", JsonValue(report.options.drop_window));
  detectors.set("queue_saturation_fraction",
                JsonValue(report.options.queue_saturation_fraction));
  detectors.set("starvation_ratio", JsonValue(report.options.starvation_ratio));
  detectors.set("starvation_min_age", JsonValue(report.options.starvation_min_age));
  detectors.set("thrash_window", JsonValue(report.options.thrash_window));
  detectors.set("thrash_rebuilds",
                JsonValue(static_cast<double>(report.options.thrash_rebuilds)));
  detectors.set("fast_burn_threshold", JsonValue(report.options.fast_burn_threshold));
  detectors.set("slow_burn_threshold", JsonValue(report.options.slow_burn_threshold));
  detectors.set("burn_min_events",
                JsonValue(static_cast<double>(report.options.burn_min_events)));
  detectors.set("slo_objectives",
                JsonValue(static_cast<double>(report.options.slo.size())));
  doc.set("detectors", std::move(detectors));

  JsonValue rules = JsonValue::array();
  for (const AlertRule& r : report.options.rules) {
    JsonValue entry = JsonValue::object();
    entry.set("name", JsonValue(r.name));
    entry.set("kind", JsonValue(kind_name(r.kind)));
    entry.set("series", JsonValue(series_with_labels(r.series, r.labels)));
    entry.set("cmp", JsonValue(cmp_name(r.cmp)));
    entry.set("value", JsonValue(r.value));
    entry.set("window", JsonValue(r.window));
    entry.set("hold", JsonValue(static_cast<double>(r.hold)));
    rules.push_back(std::move(entry));
  }
  doc.set("rules", std::move(rules));

  JsonValue series = JsonValue::array();
  for (const SeriesStat& s : report.series) {
    JsonValue entry = JsonValue::object();
    entry.set("series", JsonValue(s.series));
    entry.set("lane", JsonValue(static_cast<double>(s.lane)));
    entry.set("samples", JsonValue(static_cast<double>(s.samples)));
    entry.set("last_at", JsonValue(s.last_at));
    entry.set("min", JsonValue(s.min));
    entry.set("max", JsonValue(s.max));
    entry.set("last", JsonValue(s.last));
    JsonValue window = JsonValue::array();
    for (const auto& [at, value] : s.window) {
      JsonValue point = JsonValue::object();
      point.set("t", JsonValue(at));
      point.set("value", JsonValue(value));
      window.push_back(std::move(point));
    }
    entry.set("window", std::move(window));
    series.push_back(std::move(entry));
  }
  doc.set("series", std::move(series));

  JsonValue incidents = JsonValue::array();
  std::map<std::string, std::uint32_t> by_rule;
  std::uint32_t open_count = 0;
  for (const Incident& inc : report.incidents) {
    JsonValue entry = JsonValue::object();
    entry.set("rule", JsonValue(inc.rule));
    entry.set("kind", JsonValue(inc.kind));
    entry.set("lane", JsonValue(static_cast<double>(inc.lane)));
    entry.set("tenant", JsonValue(inc.tenant));
    entry.set("fired", JsonValue(inc.fired));
    entry.set("cleared", JsonValue(inc.cleared));
    entry.set("open", JsonValue(inc.open));
    entry.set("value", JsonValue(inc.value));
    entry.set("span", JsonValue(inc.span));
    entry.set("iteration", JsonValue(static_cast<double>(inc.iteration)));
    incidents.push_back(std::move(entry));
    ++by_rule[inc.rule];
    if (inc.open) ++open_count;
  }
  doc.set("incidents", std::move(incidents));

  JsonValue summary = JsonValue::object();
  summary.set("incidents", JsonValue(static_cast<double>(report.incidents.size())));
  summary.set("open", JsonValue(static_cast<double>(open_count)));
  JsonValue counts = JsonValue::array();
  for (const auto& [rule, count] : by_rule) {
    JsonValue entry = JsonValue::object();
    entry.set("rule", JsonValue(rule));
    entry.set("count", JsonValue(static_cast<double>(count)));
    counts.push_back(std::move(entry));
  }
  summary.set("by_rule", std::move(counts));
  doc.set("summary", std::move(summary));
  return doc;
}

std::string health_text(const HealthReport& report, bool summary_only) {
  std::string out = "multihit health monitor (" + std::string(kHealthSchema) + ")\n";
  out += "  makespan " + json_number(report.makespan) + " s, " +
         std::to_string(report.boundaries) + " boundaries @ " +
         json_number(report.options.sample_every) + " s cadence\n";
  out += "  telemetry: " + std::to_string(report.series.size()) + " series over " +
         std::to_string(report.rank_lanes) + " rank lane(s)\n";
  std::map<std::string, std::uint32_t> by_rule;
  std::uint32_t open_count = 0;
  for (const Incident& inc : report.incidents) {
    ++by_rule[inc.rule];
    if (inc.open) ++open_count;
  }
  out += "  incidents: " + std::to_string(report.incidents.size()) + " (" +
         std::to_string(open_count) + " open)\n";
  for (const auto& [rule, count] : by_rule) {
    out += "    " + rule + ": " + std::to_string(count) + " incident(s)\n";
  }
  if (summary_only) return out;
  for (const Incident& inc : report.incidents) {
    std::string lane;
    if (inc.lane == kEngineLane) {
      lane = "engine";
    } else if (inc.lane == kSchedulerLane) {
      lane = "scheduler";
    } else if (inc.lane > kEngineLane) {
      lane = "serve lane " + std::to_string(inc.lane - kEngineLane);
    } else {
      lane = "rank " + std::to_string(inc.lane);
    }
    if (!inc.tenant.empty()) lane += " tenant=" + inc.tenant;
    out += "  [" + inc.rule + "] " + lane + " fired t=" + json_number(inc.fired) +
           (inc.open ? " s (still open at t=" : " s (cleared t=") +
           json_number(inc.cleared) + " s), value " + json_number(inc.value);
    if (!inc.span.empty()) out += ", in " + inc.span;
    if (inc.iteration >= 0) out += ", iteration " + std::to_string(inc.iteration);
    out += "\n";
  }
  return out;
}

std::vector<std::string> health_crosscheck(const HealthReport& report,
                                           const JsonValue& metrics) {
  std::vector<std::string> mismatches;
  std::map<std::string, double> totals;
  try {
    totals = metrics_counter_totals(metrics);
  } catch (const AnalysisError& e) {
    return {e.what()};
  }
  std::set<std::uint32_t> dead_lanes;
  bool any_drop_incident = false;
  for (const Incident& inc : report.incidents) {
    if (inc.rule == "dead_rank") dead_lanes.insert(inc.lane);
    if (inc.rule == "message_drop") any_drop_incident = true;
  }
  const auto total = [&](const char* name) {
    const auto it = totals.find(name);
    return it == totals.end() ? 0.0 : it->second;
  };
  const double ranks_lost = total("cluster.ranks_lost");
  if (static_cast<double>(dead_lanes.size()) != ranks_lost) {
    mismatches.push_back("dead_rank incidents cover " + std::to_string(dead_lanes.size()) +
                         " lane(s) but metrics count cluster.ranks_lost=" +
                         json_number(ranks_lost));
  }
  const double retransmits = total("comm.retransmits");
  if ((retransmits > 0.0) != any_drop_incident) {
    mismatches.push_back(std::string("message_drop incidents ") +
                         (any_drop_incident ? "fired" : "absent") +
                         " but metrics count comm.retransmits=" + json_number(retransmits));
  }
  return mismatches;
}

void annotate_trace(Tracer& trace, const HealthReport& report) {
  for (const Incident& inc : report.incidents) {
    trace.instant(inc.lane, "health." + inc.rule, "health", inc.fired,
                  {{"value", json_number(inc.value)},
                   {"cleared", json_number(inc.cleared)},
                   {"open", inc.open ? "true" : "false"}});
  }
}

JsonValue truth_json(const std::vector<TruthEvent>& events) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", JsonValue(kTruthSchema));
  JsonValue list = JsonValue::array();
  for (const TruthEvent& e : events) {
    JsonValue entry = JsonValue::object();
    entry.set("kind", JsonValue(e.kind));
    entry.set("rank", JsonValue(static_cast<double>(e.rank)));
    entry.set("iteration", JsonValue(static_cast<double>(e.iteration)));
    entry.set("sim_time", JsonValue(e.sim_time));
    list.push_back(std::move(entry));
  }
  doc.set("events", std::move(list));
  return doc;
}

std::vector<TruthEvent> truth_from_json(const JsonValue& doc) {
  require_schema<MonitorError>(doc, kTruthSchema, "truth document");
  const JsonValue* events = doc.find("events");
  if (!events || !events->is_array()) {
    throw MonitorError("truth document has no events array");
  }
  std::vector<TruthEvent> out;
  out.reserve(events->size());
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& entry = events->at(i);
    const JsonValue* kind = entry.find("kind");
    const JsonValue* rank = entry.find("rank");
    const JsonValue* iteration = entry.find("iteration");
    const JsonValue* sim_time = entry.find("sim_time");
    if (!kind || !kind->is_string() || !rank || !rank->is_number() || !iteration ||
        !iteration->is_number() || !sim_time || !sim_time->is_number()) {
      throw MonitorError("truth event " + std::to_string(i) +
                         " missing kind/rank/iteration/sim_time");
    }
    out.push_back({kind->as_string(), static_cast<std::uint32_t>(rank->as_number()),
                   static_cast<std::uint32_t>(iteration->as_number()),
                   sim_time->as_number()});
  }
  return out;
}

bool HealthScore::perfect() const noexcept {
  if (false_positives != 0) return false;
  for (const auto& [kind, score] : by_class) {
    if (score.detected != score.injected) return false;
  }
  return true;
}

HealthScore score_incidents(const HealthReport& report,
                            const std::vector<TruthEvent>& truth,
                            double detection_window) {
  if (!(detection_window > 0.0)) {
    throw MonitorError("score_incidents needs a positive detection window");
  }
  // Primary detector per fault class, plus the corroborating classes a fault
  // legitimately drags along (a crash's detection windows and a straggler's
  // reduce skew both really are comm overhead; a straggler's slow device
  // really is a throughput collapse).
  const auto primary = [](const std::string& kind) -> const char* {
    if (kind == "crash") return "dead_rank";
    if (kind == "straggler") return "straggler";
    if (kind == "drop") return "message_drop";
    if (kind == "abort") return "job_abort";
    return nullptr;
  };
  const auto corroborates = [](const std::string& kind, const std::string& rule) {
    if (kind == "crash") return rule == "gpu_collapse" || rule == "comm_overhead";
    if (kind == "straggler") return rule == "gpu_collapse" || rule == "comm_overhead";
    if (kind == "drop") return rule == "comm_overhead";
    return false;
  };

  HealthScore score;
  std::vector<bool> matched(report.incidents.size(), false);
  std::map<std::string, std::vector<double>> latencies;

  for (const TruthEvent& e : truth) {
    const char* want = primary(e.kind);
    if (!want) throw MonitorError("unknown truth kind '" + e.kind + "'");
    ClassScore& cls = score.by_class[e.kind];
    ++cls.injected;
    const double lo = e.sim_time;
    const double hi = e.sim_time + detection_window;
    const std::uint32_t lane = e.kind == "abort" ? kEngineLane : e.rank;
    double first_fire = -1.0;
    for (std::size_t i = 0; i < report.incidents.size(); ++i) {
      const Incident& inc = report.incidents[i];
      if (!(inc.fired <= hi && inc.cleared >= lo)) continue;
      if (inc.rule == want && inc.lane == lane) {
        matched[i] = true;
        if (first_fire < 0.0 || inc.fired < first_fire) first_fire = inc.fired;
      } else if (corroborates(e.kind, inc.rule) &&
                 (inc.lane == lane || inc.lane == kEngineLane)) {
        matched[i] = true;
      }
    }
    if (first_fire >= 0.0) {
      ++cls.detected;
      latencies[e.kind].push_back(std::max(0.0, first_fire - e.sim_time));
    } else {
      score.misses.push_back(e.kind + " rank " + std::to_string(e.rank) + " @ iteration " +
                             std::to_string(e.iteration) + " (t=" +
                             json_number(e.sim_time) + " s) undetected within " +
                             json_number(detection_window) + " s");
    }
  }

  for (auto& [kind, values] : latencies) {
    ClassScore& cls = score.by_class[kind];
    double sum = 0.0;
    for (const double v : values) {
      sum += v;
      cls.latency_max = std::max(cls.latency_max, v);
    }
    cls.latency_mean = sum / static_cast<double>(values.size());
  }

  for (std::size_t i = 0; i < report.incidents.size(); ++i) {
    const Incident& inc = report.incidents[i];
    if (matched[i] || !is_builtin_rule(inc.rule)) continue;
    ++score.false_positives;
    score.spurious.push_back(inc.rule + " lane " + std::to_string(inc.lane) + " fired t=" +
                             json_number(inc.fired) + " s (value " +
                             json_number(inc.value) + ")");
  }
  return score;
}

std::string score_text(const HealthScore& score) {
  std::string out = "health score vs injected ground truth\n";
  for (const auto& [kind, cls] : score.by_class) {
    out += "  " + kind + ": " + std::to_string(cls.detected) + "/" +
           std::to_string(cls.injected) + " detected";
    if (cls.detected > 0) {
      out += ", latency mean " + json_number(cls.latency_mean) + " s, max " +
             json_number(cls.latency_max) + " s";
    }
    out += "\n";
  }
  out += "  false positives: " + std::to_string(score.false_positives) + "\n";
  for (const std::string& miss : score.misses) out += "  MISS: " + miss + "\n";
  for (const std::string& fp : score.spurious) out += "  SPURIOUS: " + fp + "\n";
  out += score.perfect() ? "  verdict: PERFECT\n" : "  verdict: IMPERFECT\n";
  return out;
}

}  // namespace multihit::obs
