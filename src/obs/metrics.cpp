#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace multihit::obs {

void Counter::add(double delta) {
  if (delta < 0.0 || !std::isfinite(delta)) {
    throw std::invalid_argument("Counter::add requires a non-negative finite delta");
  }
  value_ += delta;
}

void Histogram::observe(double value) {
  if (!std::isfinite(value)) {
    throw std::invalid_argument("Histogram::observe requires a finite value");
  }
  samples_.push_back(value);
  sum_ += value;
}

double Histogram::min() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

const std::vector<double>& Histogram::sorted() const {
  if (sorted_cache_.size() != samples_.size()) {
    sorted_cache_.assign(samples_.begin(), samples_.end());
    std::sort(sorted_cache_.begin(), sorted_cache_.end());
  }
  return sorted_cache_;
}

double Histogram::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  const std::vector<double>& sorted = this->sorted();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double position = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(position);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = position - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

namespace {

Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string series_key(std::string_view name, const Labels& labels) {
  // \x1f separators cannot collide with metric names or label text emitted
  // by this codebase, keeping (name, labels) -> key injective.
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1f';
    key += v;
  }
  return key;
}

JsonValue labels_json(const Labels& labels) {
  JsonValue::Object object;
  for (const auto& [k, v] : labels) object.emplace_back(k, JsonValue(v));
  return JsonValue(std::move(object));
}

}  // namespace

MetricsRegistry::Series& MetricsRegistry::resolve(std::string_view name, Labels labels,
                                                  InstrumentKind kind) {
  if (name.empty()) throw std::invalid_argument("metric name must be non-empty");
  Labels sorted = canonical(std::move(labels));
  const std::string key = series_key(name, sorted);
  std::scoped_lock lock(mutex_);
  auto [it, inserted] = series_.try_emplace(key);
  Series& series = it->second;
  if (inserted) {
    series.name = std::string(name);
    series.labels = std::move(sorted);
    series.kind = kind;
    switch (kind) {
      case InstrumentKind::kCounter: series.counter = std::make_unique<Counter>(); break;
      case InstrumentKind::kGauge: series.gauge = std::make_unique<Gauge>(); break;
      case InstrumentKind::kHistogram: series.histogram = std::make_unique<Histogram>(); break;
    }
  } else if (series.kind != kind) {
    throw std::invalid_argument("metric '" + std::string(name) +
                                "' already registered with a different instrument kind");
  }
  return series;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  return *resolve(name, std::move(labels), InstrumentKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  return *resolve(name, std::move(labels), InstrumentKind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, Labels labels) {
  return *resolve(name, std::move(labels), InstrumentKind::kHistogram).histogram;
}

std::size_t MetricsRegistry::series_count() const {
  std::scoped_lock lock(mutex_);
  return series_.size();
}

JsonValue MetricsRegistry::snapshot() const {
  std::scoped_lock lock(mutex_);
  JsonValue::Array counters, gauges, histograms;
  for (const auto& [key, series] : series_) {
    JsonValue entry;
    entry.set("name", JsonValue(series.name));
    entry.set("labels", labels_json(series.labels));
    switch (series.kind) {
      case InstrumentKind::kCounter:
        entry.set("value", JsonValue(series.counter->value()));
        counters.push_back(std::move(entry));
        break;
      case InstrumentKind::kGauge:
        entry.set("value", JsonValue(series.gauge->value()));
        gauges.push_back(std::move(entry));
        break;
      case InstrumentKind::kHistogram: {
        const Histogram& h = *series.histogram;
        entry.set("count", JsonValue(static_cast<double>(h.count())));
        entry.set("sum", JsonValue(h.sum()));
        entry.set("min", JsonValue(h.min()));
        entry.set("max", JsonValue(h.max()));
        entry.set("p50", JsonValue(h.percentile(50.0)));
        entry.set("p90", JsonValue(h.percentile(90.0)));
        entry.set("p99", JsonValue(h.percentile(99.0)));
        histograms.push_back(std::move(entry));
        break;
      }
    }
  }
  JsonValue doc;
  doc.set("schema", JsonValue(kMetricsSchema));
  doc.set("counters", JsonValue(std::move(counters)));
  doc.set("gauges", JsonValue(std::move(gauges)));
  doc.set("histograms", JsonValue(std::move(histograms)));
  return doc;
}

std::string MetricsRegistry::to_json() const { return snapshot().dump(); }

}  // namespace multihit::obs
