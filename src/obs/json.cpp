#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace multihit::obs {

namespace {

void append_hex4(std::string& out, unsigned value) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "\\u%04x", value & 0xFFFFu);
  out += buf;
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          append_hex4(out, static_cast<unsigned char>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no Inf/NaN
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", value);
    return buf;
  }
  // %.17g always round-trips; try the shorter %.15g first for readability.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.15g", value);
  if (std::strtod(buf, nullptr) != value) std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::set(std::string key, JsonValue value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  require(Kind::kObject);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

void JsonValue::push_back(JsonValue value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  require(Kind::kArray);
  array_.push_back(std::move(value));
}

void JsonValue::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += json_number(number_); break;
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) out += ',';
        first = false;
        v.dump_to(out);
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(k);
        out += "\":";
        v.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw JsonParseError(std::string("JSON parse error at byte ") + std::to_string(pos_) +
                         ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail("unexpected character");
  }

  void expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) fail("invalid literal");
    pos_ += literal.size();
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't': expect_literal("true"); return JsonValue(true);
      case 'f': expect_literal("false"); return JsonValue(false);
      case 'n': expect_literal("null"); return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object members;
    skip_ws();
    if (consume('}')) return JsonValue(std::move(members));
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (consume('}')) break;
      expect(',');
    }
    return JsonValue(std::move(members));
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array elements;
    skip_ws();
    if (consume(']')) return JsonValue(std::move(elements));
    while (true) {
      elements.push_back(parse_value());
      skip_ws();
      if (consume(']')) break;
      expect(',');
    }
    return JsonValue(std::move(elements));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape digit");
          }
          // Encode the code point as UTF-8 (surrogate pairs are not needed by
          // any exporter here; lone surrogates pass through as-is bytes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape character");
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() && (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                                   text_[pos_] == '.' || text_[pos_] == 'e' ||
                                   text_[pos_] == 'E' || text_[pos_] == '+' ||
                                   text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace multihit::obs
