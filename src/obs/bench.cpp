#include "obs/bench.hpp"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "util/log.hpp"

namespace multihit::obs {

BenchReporter::BenchReporter(std::string_view bench_name) : name_(bench_name) {
  if (name_.empty()) throw std::invalid_argument("bench name must be non-empty");
}

void BenchReporter::series(std::string_view key, double value, std::string_view unit) {
  metrics_.gauge("bench." + std::string(key),
                 unit.empty() ? Labels{} : Labels{{"unit", std::string(unit)}})
      .set(value);
  series_.push_back(SeriesPoint{std::string(key), value, std::string(unit)});
}

JsonValue BenchReporter::record() const {
  JsonValue::Array series;
  for (const SeriesPoint& point : series_) {
    JsonValue entry;
    entry.set("name", JsonValue(point.name));
    entry.set("value", JsonValue(point.value));
    if (!point.unit.empty()) entry.set("unit", JsonValue(point.unit));
    series.push_back(std::move(entry));
  }
  JsonValue doc;
  doc.set("schema", JsonValue(kBenchSchema));
  doc.set("bench", JsonValue(name_));
  doc.set("series", JsonValue(std::move(series)));
  doc.set("metrics", metrics_.snapshot());
  return doc;
}

std::string BenchReporter::path() const {
  const char* dir = std::getenv("MULTIHIT_BENCH_DIR");
  std::string out = (dir && *dir) ? dir : ".";
  if (out.back() != '/') out += '/';
  return out + "BENCH_" + name_ + ".json";
}

bool BenchReporter::write() const {
  const std::string file = path();
  std::ofstream out(file);
  if (out) out << record().dump() << '\n';
  if (!out) {
    MH_LOG_WARN << "bench record not written: " << file;
    return false;
  }
  log::emit_event(log::Level::kDebug, "bench.record",
                  {log::field("bench", name_), log::field("path", file)});
  return true;
}

}  // namespace multihit::obs
