#pragma once
// Cross-run regression engine (multihit.diff.v1).
//
// Loads two runs — each a multihit.run.v1 manifest or a single artifact —
// and produces one deterministic comparison document. Three layers:
//
//  1. A generic series flattener turns every diffable artifact into
//     `role.dotted.path` → number/bool leaves (array elements keyed by their
//     identity fields: name, phase, tenant, rank, ...). Leaves are compared
//     exactly by default and classified identical / within-tolerance /
//     improved / regressed / added / removed. Tolerances come from a
//     `tol <series-glob> rel|abs <bound>` grammar (slo.cpp-style parser;
//     last matching rule wins), because the right default for a
//     deterministic simulator is *exact* — every relaxation should be a
//     committed, reviewable line.
//
//  2. Specialized sections that know artifact semantics: critical-path
//     segment diffing that attributes the makespan delta to phase×lane
//     cells (the cells plus an explicit residual sum to the delta exactly),
//     per-kernel profile deltas (duration, DRAM bytes, occupancy, roofline
//     movement), incident matching by rule+lane+overlapping window,
//     per-tenant SLO attainment/burn deltas, and hostprof wall-clock /
//     worker-imbalance deltas. Hostprof is special-cased on the series side
//     too: only its deterministic projection (workload + totals + backend
//     attribution) is flattened, so wall-clock noise lands here instead of
//     tripping the exact gate.
//
//  3. A verdict: regression iff any series regressed or disappeared, an
//     incident appeared in B that A does not have, or an SLO objective is
//     newly violated. Config changes and artifact-coverage differences are
//     reported but informational — comparing an EA run against an ED run is
//     the point, not an error.
//
// Determinism contract: same inputs + tolerances => byte-identical
// multihit.diff.v1 (series sorted by name, sections sorted by their keys,
// derived quantities recomputed from stored doubles at render time), and
// diff_from_json round-trips byte-identically like every other obs artifact.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/runinfo.hpp"

namespace multihit::obs {

/// Raised on malformed inputs: unreadable files, wrong schemas, digest
/// mismatches, and tolerance-grammar errors (naming the offending line).
class DiffError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// --- tolerance grammar -----------------------------------------------------

/// One `tol <series-glob> rel|abs <bound>` rule. Globs support '*' (any
/// span) and '?' (any one character); everything else matches literally.
struct ToleranceRule {
  std::string glob;
  bool relative = true;  ///< rel: |b-a| <= bound*max(|a|,|b|); abs: |b-a| <= bound
  double bound = 0.0;
};

/// Parses the tolerance grammar ('#' comments, blank lines skipped); throws
/// DiffError naming the offending line.
std::vector<ToleranceRule> parse_tolerances(std::string_view text);

/// True when `glob` matches all of `name`.
bool glob_match(std::string_view glob, std::string_view name);

// --- series deltas ---------------------------------------------------------

enum class DeltaClass {
  kIdentical,        ///< bit-equal on both sides
  kWithinTolerance,  ///< differs, but a tol rule covers it
  kImproved,         ///< differs in the better direction for this series
  kRegressed,        ///< differs in the worse direction
  kAdded,            ///< present only in run B
  kRemoved,          ///< present only in run A
};

const char* delta_class_name(DeltaClass cls) noexcept;

/// One non-identical series (identical ones are counted, not listed).
struct SeriesDelta {
  std::string series;
  DeltaClass cls = DeltaClass::kIdentical;
  bool has_a = false;
  bool has_b = false;
  double a = 0.0;
  double b = 0.0;
  std::string tolerance;  ///< the covering rule's glob ("" when none)
};

/// True when smaller values of `series` are better (seconds, bytes, stalls,
/// rejections...). Higher-is-better names (attainment, occupancy,
/// throughput, admission, ...) return false. The heuristic only picks the
/// improved/regressed label — the *gate* treats any uncovered delta on a
/// lower-is-better=false series as regression-worthy via kRegressed when it
/// moves down.
bool lower_is_better(std::string_view series);

// --- specialized sections --------------------------------------------------

/// One phase×lane cell of the makespan attribution: total critical-path
/// seconds attributed to (phase, lane) on each side. delta = b - a; the sum
/// of cell deltas plus `residual` equals the makespan delta exactly.
struct AttributionCell {
  std::string phase;
  std::uint32_t lane = 0;
  double a_seconds = 0.0;
  double b_seconds = 0.0;
};

struct CriticalPathDiff {
  bool present = false;  ///< both runs carried an analysis artifact
  double makespan_a = 0.0;
  double makespan_b = 0.0;
  std::vector<AttributionCell> cells;  ///< sorted by (phase, lane)
};

/// Per-(rank, gpu, iteration) kernel aggregate deltas; only rows where some
/// field moved are listed, totals always.
struct KernelRowDiff {
  std::uint32_t rank = 0;
  std::uint32_t gpu = 0;
  std::uint32_t iteration = 0;
  double launches_a = 0.0, launches_b = 0.0;
  double seconds_a = 0.0, seconds_b = 0.0;
  double dram_bytes_a = 0.0, dram_bytes_b = 0.0;
  double occupancy_a = 0.0, occupancy_b = 0.0;      ///< launch-mean
  double intensity_a = 0.0, intensity_b = 0.0;      ///< launch-mean flop/byte
  double memory_bound_a = 0.0, memory_bound_b = 0.0;  ///< bound-launch count
};

struct KernelDiff {
  bool present = false;
  double launches_a = 0.0, launches_b = 0.0;
  double seconds_a = 0.0, seconds_b = 0.0;
  double dram_bytes_a = 0.0, dram_bytes_b = 0.0;
  double memory_bound_fraction_a = 0.0, memory_bound_fraction_b = 0.0;
  std::vector<KernelRowDiff> rows;  ///< sorted by (rank, gpu, iteration)
};

/// One health incident as the matcher sees it.
struct IncidentKey {
  std::string rule;
  std::string kind;
  std::uint32_t lane = 0;
  std::string tenant;
  double fired = 0.0;
  double cleared = 0.0;
  double value = 0.0;
};

/// Incidents matched by (rule, kind, lane, tenant) + overlapping
/// [fired, cleared] windows; unmatched ones in B are `added` (a new alert
/// fired — that is a regression), unmatched in A are `removed`.
struct IncidentDiff {
  bool present = false;
  std::uint32_t matched = 0;
  std::vector<IncidentKey> added;
  std::vector<IncidentKey> removed;
};

/// Per-(tenant, objective) SLO movement.
struct SloObjectiveDiff {
  std::string tenant;
  std::string kind;
  double percentile = 0.0;
  double observed_a = 0.0, observed_b = 0.0;
  double attainment_a = 0.0, attainment_b = 0.0;
  double burn_a = 0.0, burn_b = 0.0;  ///< max slow-window burn (budget only)
  bool violated_a = false, violated_b = false;
};

struct SloDiff {
  bool present = false;
  std::vector<SloObjectiveDiff> objectives;  ///< sorted by (tenant, kind, percentile)
};

/// Hostprof wall-clock + imbalance movement: informational by design (wall
/// clock is the one number the simulator does not control).
struct HostprofPhaseDiff {
  std::string phase;
  double max_over_mean_a = 0.0, max_over_mean_b = 0.0;
  double straggler_lane_a = 0.0, straggler_lane_b = 0.0;
};

struct HostprofDiff {
  bool present = false;
  double wall_a = 0.0, wall_b = 0.0;
  double eval_a = 0.0, eval_b = 0.0;
  double tail_idle_a = 0.0, tail_idle_b = 0.0;
  double combos_per_sec_a = 0.0, combos_per_sec_b = 0.0;
  std::vector<HostprofPhaseDiff> phases;  ///< sorted by phase
};

// --- run inputs ------------------------------------------------------------

/// One side of a diff, fully in memory: a label (the CLI operand or a bench
/// scenario name), the manifest when one was loaded, and parsed artifact
/// documents keyed by role ("metrics", "analysis", ...; sorted).
struct RunInput {
  std::string label;
  bool has_manifest = false;
  RunManifest manifest;
  std::vector<std::pair<std::string, JsonValue>> docs;
  /// name → content digest for the artifact-coverage table (includes
  /// non-diffable artifacts like traces; sorted by name).
  std::vector<std::pair<std::string, std::string>> digests;
};

/// Registers an in-memory document under `role` (and digests its dump), for
/// in-process callers like bench_diff.
void add_doc(RunInput& run, std::string role, JsonValue doc);

/// Loads one side from disk. A multihit.run.v1 file loads every inventoried
/// artifact (paths resolved relative to the manifest's directory) and
/// verifies each digest; any other registered schema loads as a
/// single-artifact run under its registry kind. Throws DiffError on
/// unreadable files, unknown schemas, schema/inventory mismatches, and
/// digest mismatches.
RunInput load_run(const std::string& path);

// --- the report ------------------------------------------------------------

struct DiffOptions {
  std::vector<ToleranceRule> tolerances;
};

struct RunSummary {
  std::string label;
  std::string driver;
  std::vector<std::pair<std::string, std::string>> config;
};

/// One artifact's coverage row (union over both runs, sorted by name).
struct ArtifactDelta {
  std::string name;
  std::string schema;
  bool in_a = false;
  bool in_b = false;
  bool identical = false;  ///< digests equal (both sides present)
};

struct DiffCounts {
  std::uint32_t compared = 0;  ///< series present on at least one side
  std::uint32_t identical = 0;
  std::uint32_t within_tolerance = 0;
  std::uint32_t improved = 0;
  std::uint32_t regressed = 0;
  std::uint32_t added = 0;
  std::uint32_t removed = 0;
};

struct DiffReport {
  RunSummary run_a, run_b;
  std::vector<ToleranceRule> tolerances;  ///< echo, declaration order
  /// Config keys whose values differ (or exist on one side only); values
  /// are ("" when absent). Sorted by key. Informational.
  std::vector<std::pair<std::string, std::pair<std::string, std::string>>> config_changes;
  std::vector<ArtifactDelta> artifacts;
  DiffCounts counts;
  std::vector<SeriesDelta> series;  ///< non-identical only, sorted by name
  CriticalPathDiff critical_path;
  KernelDiff kernels;
  IncidentDiff incidents;
  SloDiff slo;
  HostprofDiff hostprof;
  std::uint32_t slo_newly_violated = 0;
  std::string summary;  ///< one human sentence, embedded verbatim in the doc
};

/// True when the report's verdict is "regressed" (obstool diff exits 1).
bool diff_regression(const DiffReport& report) noexcept;

/// Compares two loaded runs under `options`. Pure and deterministic.
DiffReport diff_runs(const RunInput& a, const RunInput& b, const DiffOptions& options);

/// Renders the multihit.diff.v1 document (stable field order; identical
/// reports produce byte-identical documents).
JsonValue diff_report_json(const DiffReport& report);

/// Parses a multihit.diff.v1 document back; throws DiffError on the wrong
/// schema (naming expected and found) or ill-shaped entries. Round-trip
/// through diff_report_json is byte-identical.
DiffReport diff_from_json(const JsonValue& doc);

/// Human-readable rendering; `summary_only` stops after the verdict line.
std::string diff_text(const DiffReport& report, bool summary_only = false);

}  // namespace multihit::obs
