// Rendering for the trace analysis: the multihit.analysis.v1 JSON report
// and the human-readable summary `multihit-obstool analyze` prints. Both are
// pure functions of TraceAnalysis (plus an optional metrics snapshot), so
// byte-identical analyses render byte-identical artifacts.

#include <cstdio>
#include <map>

#include "obs/analyze.hpp"
#include "obs/metrics.hpp"

namespace multihit::obs {

namespace {

std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, value);
  return buf;
}

}  // namespace

std::map<std::string, double> metrics_counter_totals(const JsonValue& metrics) {
  require_schema<AnalysisError>(metrics, kMetricsSchema, "metrics document");
  std::map<std::string, double> totals;
  const JsonValue* counters = metrics.find("counters");
  if (!counters || !counters->is_array()) {
    throw AnalysisError("metrics snapshot has no counters array");
  }
  for (std::size_t i = 0; i < counters->size(); ++i) {
    const JsonValue& entry = counters->at(i);
    const JsonValue* name = entry.find("name");
    const JsonValue* value = entry.find("value");
    if (!name || !name->is_string() || !value || !value->is_number()) {
      throw AnalysisError("metrics counter entry missing name/value");
    }
    totals[name->as_string()] += value->as_number();
  }
  return totals;
}

JsonValue analysis_report(const TraceAnalysis& analysis, const JsonValue* metrics) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", JsonValue(kAnalysisSchema));
  doc.set("makespan_seconds", JsonValue(analysis.makespan));
  doc.set("rank_lanes", JsonValue(static_cast<double>(analysis.rank_lanes)));

  JsonValue phases = JsonValue::array();
  for (const PhaseStat& stat : analysis.phases) {
    JsonValue entry = JsonValue::object();
    entry.set("phase", JsonValue(stat.phase));
    entry.set("category", JsonValue(stat.category));
    entry.set("total_seconds", JsonValue(stat.total_seconds));
    entry.set("mean_seconds", JsonValue(stat.mean_seconds));
    entry.set("max_seconds", JsonValue(stat.max_seconds));
    entry.set("stddev_seconds", JsonValue(stat.stddev_seconds));
    entry.set("max_over_mean", JsonValue(stat.max_over_mean));
    entry.set("lanes", JsonValue(static_cast<double>(stat.lanes)));
    entry.set("straggler_lane", JsonValue(static_cast<double>(stat.straggler_lane)));
    phases.push_back(std::move(entry));
  }
  doc.set("phases", std::move(phases));

  JsonValue critical = JsonValue::object();
  critical.set("total_seconds", JsonValue(analysis.critical_total));
  JsonValue by_phase = JsonValue::array();
  for (const auto& [phase, seconds] : analysis.critical_by_phase) {
    JsonValue entry = JsonValue::object();
    entry.set("phase", JsonValue(phase));
    entry.set("seconds", JsonValue(seconds));
    entry.set("fraction", JsonValue(analysis.critical_total > 0.0
                                        ? seconds / analysis.critical_total
                                        : 0.0));
    by_phase.push_back(std::move(entry));
  }
  critical.set("by_phase", std::move(by_phase));
  JsonValue segments = JsonValue::array();
  for (const CriticalSegment& seg : analysis.critical_path) {
    JsonValue entry = JsonValue::object();
    entry.set("lane", JsonValue(static_cast<double>(seg.lane)));
    entry.set("phase", JsonValue(seg.phase));
    entry.set("begin_seconds", JsonValue(seg.begin));
    entry.set("end_seconds", JsonValue(seg.end));
    segments.push_back(std::move(entry));
  }
  critical.set("segments", std::move(segments));
  doc.set("critical_path", std::move(critical));

  JsonValue comm = JsonValue::object();
  comm.set("comm_seconds", JsonValue(analysis.comm_seconds));
  comm.set("busy_seconds", JsonValue(analysis.busy_seconds));
  comm.set("overhead_fraction", JsonValue(analysis.comm_fraction));
  doc.set("comm", std::move(comm));

  JsonValue iterations = JsonValue::array();
  for (const IterationWindow& window : analysis.iterations) {
    JsonValue entry = JsonValue::object();
    entry.set("index", JsonValue(static_cast<double>(window.index)));
    entry.set("begin_seconds", JsonValue(window.begin));
    entry.set("end_seconds", JsonValue(window.end));
    iterations.push_back(std::move(entry));
  }
  doc.set("iterations", std::move(iterations));

  if (metrics) {
    JsonValue totals = JsonValue::array();
    for (const auto& [name, value] : metrics_counter_totals(*metrics)) {
      JsonValue entry = JsonValue::object();
      entry.set("name", JsonValue(name));
      entry.set("value", JsonValue(value));
      totals.push_back(std::move(entry));
    }
    JsonValue section = JsonValue::object();
    section.set("counter_totals", std::move(totals));
    doc.set("metrics", std::move(section));
  }
  return doc;
}

std::string analysis_text(const TraceAnalysis& analysis) {
  std::string out = "multihit trace analysis (" + std::string(kAnalysisSchema) + ")\n";
  out += "  makespan: " + fmt("%.6g", analysis.makespan) + " s across " +
         std::to_string(analysis.rank_lanes) + " rank lane(s), " +
         std::to_string(analysis.iterations.size()) + " greedy iteration(s)\n";

  out += "  critical path: " + fmt("%.6g", analysis.critical_total) + " s\n";
  for (const auto& [phase, seconds] : analysis.critical_by_phase) {
    const double frac =
        analysis.critical_total > 0.0 ? seconds / analysis.critical_total : 0.0;
    out += "    " + phase + ": " + fmt("%.6g", seconds) + " s (" +
           fmt("%.2f", frac * 100.0) + "%)\n";
  }

  out += "  phase breakdown across rank lanes (seconds):\n";
  for (const PhaseStat& stat : analysis.phases) {
    out += "    " + stat.phase + ": total " + fmt("%.6g", stat.total_seconds) + ", mean " +
           fmt("%.6g", stat.mean_seconds) + ", max " + fmt("%.6g", stat.max_seconds) +
           " (lane " + std::to_string(stat.straggler_lane) + "), stddev " +
           fmt("%.6g", stat.stddev_seconds) + ", max/mean " +
           fmt("%.3f", stat.max_over_mean) + "\n";
  }

  out += "  communication overhead: " + fmt("%.6g", analysis.comm_seconds) + " s of " +
         fmt("%.6g", analysis.busy_seconds) + " s busy (" +
         fmt("%.4f", analysis.comm_fraction * 100.0) + "%)\n";
  return out;
}

}  // namespace multihit::obs
