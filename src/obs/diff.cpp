#include "obs/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/schema.hpp"

namespace multihit::obs {
namespace {

std::string fmt(const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof buffer, format, args);
  va_end(args);
  return buffer;
}

std::string read_file(const std::string& path, const char* what) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw DiffError(std::string("diff: cannot read ") + what + " \"" + path + "\"");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

const JsonValue& member(const JsonValue& obj, std::string_view key, const char* what) {
  const JsonValue* value = obj.find(key);
  if (!value) {
    throw DiffError(std::string("diff: ") + what + " is missing \"" + std::string(key) + "\"");
  }
  return *value;
}

double number_or(const JsonValue& obj, std::string_view key, double fallback) {
  const JsonValue* value = obj.find(key);
  return value && value->is_number() ? value->as_number() : fallback;
}

}  // namespace

// --- tolerance grammar -----------------------------------------------------

std::vector<ToleranceRule> parse_tolerances(std::string_view text) {
  std::vector<ToleranceRule> rules;
  std::istringstream lines{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const auto fail = [&](const std::string& why) {
      throw DiffError("tol line " + std::to_string(line_no) + ": " + why);
    };
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream words(line);
    std::string word;
    std::vector<std::string> tokens;
    while (words >> word) tokens.push_back(word);
    if (tokens.empty()) continue;
    if (tokens[0] != "tol") fail("expected \"tol\", got \"" + tokens[0] + "\"");
    if (tokens.size() != 4) {
      fail("expected \"tol <series-glob> rel|abs <bound>\" (" +
           std::to_string(tokens.size()) + " words)");
    }
    ToleranceRule rule;
    rule.glob = tokens[1];
    if (tokens[2] == "rel") {
      rule.relative = true;
    } else if (tokens[2] == "abs") {
      rule.relative = false;
    } else {
      fail("expected rel|abs, got \"" + tokens[2] + "\"");
    }
    char* end = nullptr;
    rule.bound = std::strtod(tokens[3].c_str(), &end);
    if (end == tokens[3].c_str() || *end != '\0' || !(rule.bound >= 0.0)) {
      fail("bound must be a non-negative number, got \"" + tokens[3] + "\"");
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

bool glob_match(std::string_view glob, std::string_view name) {
  std::size_t g = 0, n = 0;
  std::size_t star_g = std::string_view::npos, star_n = 0;
  while (n < name.size()) {
    if (g < glob.size() && (glob[g] == '?' || glob[g] == name[n])) {
      ++g, ++n;
    } else if (g < glob.size() && glob[g] == '*') {
      star_g = g++;
      star_n = n;
    } else if (star_g != std::string_view::npos) {
      g = star_g + 1;
      n = ++star_n;
    } else {
      return false;
    }
  }
  while (g < glob.size() && glob[g] == '*') ++g;
  return g == glob.size();
}

const char* delta_class_name(DeltaClass cls) noexcept {
  switch (cls) {
    case DeltaClass::kIdentical: return "identical";
    case DeltaClass::kWithinTolerance: return "within_tolerance";
    case DeltaClass::kImproved: return "improved";
    case DeltaClass::kRegressed: return "regressed";
    case DeltaClass::kAdded: return "added";
    case DeltaClass::kRemoved: return "removed";
  }
  return "?";
}

namespace {

DeltaClass delta_class_from_name(const std::string& name) {
  for (DeltaClass cls : {DeltaClass::kIdentical, DeltaClass::kWithinTolerance,
                         DeltaClass::kImproved, DeltaClass::kRegressed,
                         DeltaClass::kAdded, DeltaClass::kRemoved}) {
    if (name == delta_class_name(cls)) return cls;
  }
  throw DiffError("diff: unknown series class \"" + name + "\"");
}

}  // namespace

bool lower_is_better(std::string_view series) {
  // Names where *more* is better; everything else (seconds, bytes, stalls,
  // rejections, burn rates, incident counts) defaults to lower-is-better.
  static constexpr std::string_view kHigherBetter[] = {
      "attainment", "admission",  "occupancy",    "efficiency",
      "throughput", "per_sec",    "speedup",      "cache_hit",
      "completed",  "busy_fraction", "headroom",
  };
  for (std::string_view token : kHigherBetter) {
    if (series.find(token) != std::string_view::npos) return false;
  }
  return true;
}

// --- series flattening -----------------------------------------------------

namespace {

/// Identity fields used to key array elements, tried in this order; every
/// one present contributes to the element key.
constexpr std::string_view kIdentityFields[] = {
    "name", "phase",  "rule", "series", "tenant", "op",        "cancer",
    "worker", "client", "id",  "gpu",    "rank",   "lane",      "iteration",
    "index", "kind",
};

std::string element_key(const JsonValue& element) {
  if (!element.is_object()) return {};
  std::string key;
  for (std::string_view field : kIdentityFields) {
    const JsonValue* value = element.find(field);
    if (!value) continue;
    if (!key.empty()) key += ',';
    key += field;
    key += '=';
    if (value->is_string()) {
      key += value->as_string();
    } else if (value->is_number()) {
      key += json_number(value->as_number());
    } else if (value->is_bool()) {
      key += value->as_bool() ? "true" : "false";
    }
  }
  return key;
}

using SeriesMap = std::map<std::string, double>;

struct Flattener {
  SeriesMap& out;
  const std::vector<std::string_view>& skip;

  void add_leaf(const std::string& path, double value) {
    if (out.emplace(path, value).second) return;
    for (int n = 2;; ++n) {
      if (out.emplace(path + "#" + std::to_string(n), value).second) return;
    }
  }

  bool skipped(const std::string& path) const {
    for (std::string_view glob : skip) {
      if (glob_match(glob, path)) return true;
    }
    return false;
  }

  void walk(const std::string& path, const JsonValue& value) {
    if (skipped(path)) return;
    switch (value.kind()) {
      case JsonValue::Kind::kNumber:
        add_leaf(path, value.as_number());
        return;
      case JsonValue::Kind::kBool:
        add_leaf(path, value.as_bool() ? 1.0 : 0.0);
        return;
      case JsonValue::Kind::kObject:
        for (const auto& [key, child] : value.as_object()) {
          walk(path + "." + key, child);
        }
        return;
      case JsonValue::Kind::kArray: {
        const JsonValue::Array& elements = value.as_array();
        for (std::size_t i = 0; i < elements.size(); ++i) {
          std::string key = element_key(elements[i]);
          if (key.empty()) key = std::to_string(i);
          walk(path + "[" + key + "]", elements[i]);
        }
        return;
      }
      default:
        return;  // strings and nulls are identity/config, not series
    }
  }
};

std::string labels_suffix(const JsonValue& entry) {
  const JsonValue* labels = entry.find("labels");
  if (!labels || !labels->is_object() || labels->as_object().empty()) return {};
  std::string out = "{";
  for (const auto& [key, value] : labels->as_object()) {
    if (out.size() > 1) out += ',';
    out += key;
    out += '=';
    if (value.is_string()) out += value.as_string();
  }
  out += '}';
  return out;
}

/// Metrics get a curated flattening — `metrics.counter.<name>{labels}` — so
/// labeled variants never rely on positional collision suffixes.
void flatten_metrics(const JsonValue& doc, SeriesMap& out) {
  static const std::vector<std::string_view> kNoSkip;
  Flattener flat{out, kNoSkip};
  for (const auto& [section, kind] :
       {std::pair<const char*, const char*>{"counters", "counter"},
        {"gauges", "gauge"}}) {
    const JsonValue* entries = doc.find(section);
    if (!entries || !entries->is_array()) continue;
    for (const JsonValue& entry : entries->as_array()) {
      const JsonValue* name = entry.find("name");
      const JsonValue* value = entry.find("value");
      if (!name || !name->is_string() || !value || !value->is_number()) continue;
      flat.add_leaf("metrics." + std::string(kind) + "." + name->as_string() +
                        labels_suffix(entry),
                    value->as_number());
    }
  }
  if (const JsonValue* entries = doc.find("histograms");
      entries && entries->is_array()) {
    for (const JsonValue& entry : entries->as_array()) {
      const JsonValue* name = entry.find("name");
      if (!name || !name->is_string()) continue;
      const std::string base =
          "metrics.histogram." + name->as_string() + labels_suffix(entry);
      for (const char* stat : {"count", "sum", "min", "max", "p50", "p90", "p99"}) {
        if (const JsonValue* value = entry.find(stat); value && value->is_number()) {
          flat.add_leaf(base + "." + stat, value->as_number());
        }
      }
    }
  }
}

/// Flattens one artifact document into role-prefixed series. Sections with
/// specialized diff semantics (critical-path segments, per-launch kernels,
/// incidents, sampler rings) are excluded here; hostprof keeps only its
/// deterministic projection so wall-clock noise cannot trip the exact gate.
void flatten_role(const std::string& role, const JsonValue& doc, SeriesMap& out) {
  if (role == "metrics") {
    flatten_metrics(doc, out);
    return;
  }
  static const std::vector<std::string_view> kAnalysisSkip = {
      "analysis.critical_path.segments"};
  static const std::vector<std::string_view> kProfileSkip = {"profile.kernels"};
  static const std::vector<std::string_view> kHealthSkip = {
      "health.incidents", "health.series[*].window"};
  static const std::vector<std::string_view> kHostprofSkip = {
      "hostprof.wallclock", "hostprof.imbalance", "hostprof.claim_latency",
      "hostprof.workers",   "hostprof.sweeps"};
  static const std::vector<std::string_view> kNoSkip;
  const std::vector<std::string_view>* skip = &kNoSkip;
  if (role == "analysis") skip = &kAnalysisSkip;
  if (role == "profile") skip = &kProfileSkip;
  if (role == "health") skip = &kHealthSkip;
  if (role == "hostprof") skip = &kHostprofSkip;
  Flattener{out, *skip}.walk(role, doc);
}

bool diffable_kind(std::string_view kind) {
  return kind == "metrics" || kind == "analysis" || kind == "profile" ||
         kind == "health" || kind == "serve" || kind == "slo" ||
         kind == "hostprof" || kind == "truth" || kind == "bench";
}

const JsonValue* find_doc(const RunInput& run, std::string_view role) {
  for (const auto& [key, doc] : run.docs) {
    if (key == role) return &doc;
  }
  return nullptr;
}

void insert_doc(RunInput& run, std::string role, JsonValue doc) {
  while (find_doc(run, role)) role += "+";
  auto pos = std::lower_bound(
      run.docs.begin(), run.docs.end(), role,
      [](const auto& entry, const std::string& key) { return entry.first < key; });
  run.docs.insert(pos, {std::move(role), std::move(doc)});
}

void insert_digest(RunInput& run, std::string name, std::string digest) {
  auto pos = std::lower_bound(
      run.digests.begin(), run.digests.end(), name,
      [](const auto& entry, const std::string& key) { return entry.first < key; });
  run.digests.insert(pos, {std::move(name), std::move(digest)});
}

}  // namespace

// --- run loading -----------------------------------------------------------

void add_doc(RunInput& run, std::string role, JsonValue doc) {
  insert_digest(run, role, content_digest(doc.dump() + "\n"));
  insert_doc(run, std::move(role), std::move(doc));
}

RunInput load_run(const std::string& path) {
  RunInput run;
  run.label = path;
  const std::string text = read_file(path, "run");
  JsonValue doc;
  try {
    doc = JsonValue::parse(text);
  } catch (const JsonParseError& error) {
    throw DiffError("diff: " + path + ": " + error.what());
  }
  const std::string_view tag = document_schema(doc);
  if (tag != kRunSchema) {
    const std::string_view kind = schema_kind(tag);
    // A lone non-diffable artifact (a Chrome trace, another diff report)
    // would compare zero series and "pass" vacuously — refuse it instead.
    if (kind.empty() || !diffable_kind(kind)) {
      throw DiffError("diff: \"" + path + "\" is not a run manifest or a " +
                      "comparable artifact (schema \"" + std::string(tag) + "\")");
    }
    insert_digest(run, std::string(kind), content_digest(text));
    insert_doc(run, std::string(kind), std::move(doc));
    return run;
  }

  run.has_manifest = true;
  try {
    run.manifest = manifest_from_json(doc);
  } catch (const RuninfoError& error) {
    throw DiffError("diff: " + path + ": " + error.what());
  }
  const std::filesystem::path dir = std::filesystem::path(path).parent_path();
  for (const RunArtifact& artifact : run.manifest.artifacts) {
    std::filesystem::path artifact_path(artifact.path);
    if (!artifact_path.is_absolute()) artifact_path = dir / artifact_path;
    const std::string bytes = read_file(artifact_path.string(), "artifact");
    const std::string digest = content_digest(bytes);
    if (digest != artifact.digest) {
      throw DiffError("diff: digest mismatch for artifact \"" + artifact.name +
                      "\": manifest says " + artifact.digest + ", file has " + digest);
    }
    insert_digest(run, artifact.name, digest);
    const std::string_view kind = schema_kind(artifact.schema);
    if (kind.empty()) {
      throw DiffError("diff: artifact \"" + artifact.name +
                      "\" carries unknown schema \"" + artifact.schema + "\"");
    }
    if (!diffable_kind(kind)) continue;
    JsonValue parsed;
    try {
      parsed = JsonValue::parse(bytes);
    } catch (const JsonParseError& error) {
      throw DiffError("diff: artifact \"" + artifact.name + "\" (" +
                      artifact_path.string() + "): " + error.what());
    }
    if (document_schema(parsed) != artifact.schema) {
      throw DiffError("diff: artifact \"" + artifact.name +
                      "\": expected schema \"" + artifact.schema + "\", found \"" +
                      std::string(document_schema(parsed)) + "\"");
    }
    insert_doc(run, std::string(kind), std::move(parsed));
  }
  return run;
}

// --- specialized sections --------------------------------------------------

namespace {

CriticalPathDiff diff_critical_path(const JsonValue* a, const JsonValue* b) {
  CriticalPathDiff out;
  if (!a || !b) return out;
  out.present = true;
  out.makespan_a = number_or(*a, "makespan_seconds", 0.0);
  out.makespan_b = number_or(*b, "makespan_seconds", 0.0);
  std::map<std::pair<std::string, std::uint32_t>, std::pair<double, double>> cells;
  const auto accumulate = [&cells](const JsonValue& doc, bool side_b) {
    const JsonValue* critical = doc.find("critical_path");
    const JsonValue* segments = critical ? critical->find("segments") : nullptr;
    if (!segments || !segments->is_array()) return;
    for (const JsonValue& seg : segments->as_array()) {
      const JsonValue* phase = seg.find("phase");
      if (!phase || !phase->is_string()) continue;
      const auto lane = static_cast<std::uint32_t>(number_or(seg, "lane", 0.0));
      const double seconds =
          number_or(seg, "end_seconds", 0.0) - number_or(seg, "begin_seconds", 0.0);
      auto& cell = cells[{phase->as_string(), lane}];
      (side_b ? cell.second : cell.first) += seconds;
    }
  };
  accumulate(*a, false);
  accumulate(*b, true);
  for (const auto& [key, seconds] : cells) {
    AttributionCell cell;
    cell.phase = key.first;
    cell.lane = key.second;
    cell.a_seconds = seconds.first;
    cell.b_seconds = seconds.second;
    out.cells.push_back(std::move(cell));
  }
  return out;
}

struct KernelAggregate {
  double launches = 0, seconds = 0, dram_bytes = 0;
  double occupancy = 0, intensity = 0, memory_bound = 0;
};

KernelDiff diff_kernels(const JsonValue* a, const JsonValue* b) {
  KernelDiff out;
  if (!a || !b) return out;
  out.present = true;
  using Key = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;
  std::map<Key, std::pair<KernelAggregate, KernelAggregate>> rows;
  std::pair<KernelAggregate, KernelAggregate> totals;
  const auto accumulate = [&](const JsonValue& doc, bool side_b) {
    const JsonValue* kernels = doc.find("kernels");
    if (!kernels || !kernels->is_array()) return;
    for (const JsonValue& k : kernels->as_array()) {
      const Key key{static_cast<std::uint32_t>(number_or(k, "rank", 0.0)),
                    static_cast<std::uint32_t>(number_or(k, "gpu", 0.0)),
                    static_cast<std::uint32_t>(number_or(k, "iteration", 0.0))};
      auto& pair = rows[key];
      for (KernelAggregate* agg : {side_b ? &pair.second : &pair.first,
                                   side_b ? &totals.second : &totals.first}) {
        agg->launches += 1;
        agg->seconds += number_or(k, "sim_seconds", 0.0);
        agg->dram_bytes += number_or(k, "dram_bytes", 0.0);
        agg->occupancy += number_or(k, "occupancy", 0.0);
        agg->intensity += number_or(k, "arithmetic_intensity", 0.0);
        const JsonValue* bound = k.find("memory_bound");
        if (bound && bound->is_bool() && bound->as_bool()) agg->memory_bound += 1;
      }
    }
  };
  accumulate(*a, false);
  accumulate(*b, true);
  const auto mean = [](double sum, double count) { return count > 0 ? sum / count : 0.0; };
  for (const auto& [key, pair] : rows) {
    const KernelAggregate& ka = pair.first;
    const KernelAggregate& kb = pair.second;
    KernelRowDiff row;
    row.rank = std::get<0>(key);
    row.gpu = std::get<1>(key);
    row.iteration = std::get<2>(key);
    row.launches_a = ka.launches;
    row.launches_b = kb.launches;
    row.seconds_a = ka.seconds;
    row.seconds_b = kb.seconds;
    row.dram_bytes_a = ka.dram_bytes;
    row.dram_bytes_b = kb.dram_bytes;
    row.occupancy_a = mean(ka.occupancy, ka.launches);
    row.occupancy_b = mean(kb.occupancy, kb.launches);
    row.intensity_a = mean(ka.intensity, ka.launches);
    row.intensity_b = mean(kb.intensity, kb.launches);
    row.memory_bound_a = ka.memory_bound;
    row.memory_bound_b = kb.memory_bound;
    const bool moved = row.launches_a != row.launches_b ||
                       row.seconds_a != row.seconds_b ||
                       row.dram_bytes_a != row.dram_bytes_b ||
                       row.occupancy_a != row.occupancy_b ||
                       row.intensity_a != row.intensity_b ||
                       row.memory_bound_a != row.memory_bound_b;
    if (moved) out.rows.push_back(std::move(row));
  }
  out.launches_a = totals.first.launches;
  out.launches_b = totals.second.launches;
  out.seconds_a = totals.first.seconds;
  out.seconds_b = totals.second.seconds;
  out.dram_bytes_a = totals.first.dram_bytes;
  out.dram_bytes_b = totals.second.dram_bytes;
  out.memory_bound_fraction_a = mean(totals.first.memory_bound, totals.first.launches);
  out.memory_bound_fraction_b = mean(totals.second.memory_bound, totals.second.launches);
  return out;
}

std::vector<IncidentKey> incident_keys(const JsonValue& doc) {
  std::vector<IncidentKey> out;
  const JsonValue* incidents = doc.find("incidents");
  if (!incidents || !incidents->is_array()) return out;
  for (const JsonValue& inc : incidents->as_array()) {
    IncidentKey key;
    if (const JsonValue* v = inc.find("rule"); v && v->is_string()) key.rule = v->as_string();
    if (const JsonValue* v = inc.find("kind"); v && v->is_string()) key.kind = v->as_string();
    if (const JsonValue* v = inc.find("tenant"); v && v->is_string()) key.tenant = v->as_string();
    key.lane = static_cast<std::uint32_t>(number_or(inc, "lane", 0.0));
    key.fired = number_or(inc, "fired", 0.0);
    key.cleared = number_or(inc, "cleared", 0.0);
    key.value = number_or(inc, "value", 0.0);
    out.push_back(std::move(key));
  }
  return out;
}

IncidentDiff diff_incidents(const JsonValue* a, const JsonValue* b) {
  IncidentDiff out;
  if (!a || !b) return out;
  out.present = true;
  std::vector<IncidentKey> in_a = incident_keys(*a);
  std::vector<IncidentKey> in_b = incident_keys(*b);
  std::vector<bool> used(in_b.size(), false);
  for (const IncidentKey& ka : in_a) {
    bool matched = false;
    for (std::size_t i = 0; i < in_b.size(); ++i) {
      if (used[i]) continue;
      const IncidentKey& kb = in_b[i];
      if (ka.rule != kb.rule || ka.kind != kb.kind || ka.lane != kb.lane ||
          ka.tenant != kb.tenant) {
        continue;
      }
      if (ka.fired > kb.cleared || kb.fired > ka.cleared) continue;  // windows disjoint
      used[i] = true;
      matched = true;
      ++out.matched;
      break;
    }
    if (!matched) out.removed.push_back(ka);
  }
  for (std::size_t i = 0; i < in_b.size(); ++i) {
    if (!used[i]) out.added.push_back(in_b[i]);
  }
  return out;
}

SloDiff diff_slo(const JsonValue* a, const JsonValue* b) {
  SloDiff out;
  if (!a || !b) return out;
  out.present = true;
  struct Entry {
    double observed = 0, attainment = 0, burn = 0;
    bool violated = false;
  };
  std::map<std::tuple<std::string, std::string, double>, std::pair<const JsonValue*, const JsonValue*>> matched;
  const auto collect = [&matched](const JsonValue& doc, bool side_b) {
    const JsonValue* tenants = doc.find("tenants");
    if (!tenants || !tenants->is_array()) return;
    for (const JsonValue& tenant : tenants->as_array()) {
      const JsonValue* name = tenant.find("tenant");
      const JsonValue* objectives = tenant.find("objectives");
      if (!name || !name->is_string() || !objectives || !objectives->is_array()) continue;
      for (const JsonValue& objective : objectives->as_array()) {
        const JsonValue* kind = objective.find("kind");
        if (!kind || !kind->is_string()) continue;
        auto& slot = matched[{name->as_string(), kind->as_string(),
                              number_or(objective, "percentile", 0.0)}];
        // First unclaimed slot per key side; duplicate objectives of the same
        // shape pair up through the generic series diff instead.
        if (!side_b && !slot.first) slot.first = &objective;
        if (side_b && !slot.second) slot.second = &objective;
      }
    }
  };
  collect(*a, false);
  collect(*b, true);
  for (const auto& [key, sides] : matched) {
    if (!sides.first || !sides.second) continue;
    SloObjectiveDiff diff;
    diff.tenant = std::get<0>(key);
    diff.kind = std::get<1>(key);
    diff.percentile = std::get<2>(key);
    const auto fill = [](const JsonValue& objective, double& observed,
                         double& attainment, double& burn, bool& violated) {
      observed = number_or(objective, "observed", 0.0);
      attainment = number_or(objective, "attainment", 0.0);
      burn = number_or(objective, "max_slow_burn", 0.0);
      const JsonValue* v = objective.find("violated");
      violated = v && v->is_bool() && v->as_bool();
    };
    fill(*sides.first, diff.observed_a, diff.attainment_a, diff.burn_a, diff.violated_a);
    fill(*sides.second, diff.observed_b, diff.attainment_b, diff.burn_b, diff.violated_b);
    out.objectives.push_back(std::move(diff));
  }
  return out;
}

HostprofDiff diff_hostprof(const JsonValue* a, const JsonValue* b) {
  HostprofDiff out;
  if (!a || !b) return out;
  const JsonValue* wall_a = a->find("wallclock");
  const JsonValue* wall_b = b->find("wallclock");
  if (!wall_a || !wall_b) return out;  // deterministic projections carry none
  out.present = true;
  out.wall_a = number_or(*wall_a, "wall_seconds", 0.0);
  out.wall_b = number_or(*wall_b, "wall_seconds", 0.0);
  out.eval_a = number_or(*wall_a, "eval_seconds", 0.0);
  out.eval_b = number_or(*wall_b, "eval_seconds", 0.0);
  out.tail_idle_a = number_or(*wall_a, "tail_idle_seconds", 0.0);
  out.tail_idle_b = number_or(*wall_b, "tail_idle_seconds", 0.0);
  out.combos_per_sec_a = number_or(*wall_a, "combos_per_sec", 0.0);
  out.combos_per_sec_b = number_or(*wall_b, "combos_per_sec", 0.0);
  std::map<std::string, std::pair<const JsonValue*, const JsonValue*>> phases;
  const auto collect = [&phases](const JsonValue& doc, bool side_b) {
    const JsonValue* imbalance = doc.find("imbalance");
    if (!imbalance || !imbalance->is_array()) return;
    for (const JsonValue& entry : imbalance->as_array()) {
      const JsonValue* phase = entry.find("phase");
      if (!phase || !phase->is_string()) continue;
      auto& slot = phases[phase->as_string()];
      (side_b ? slot.second : slot.first) = &entry;
    }
  };
  collect(*a, false);
  collect(*b, true);
  for (const auto& [phase, sides] : phases) {
    HostprofPhaseDiff diff;
    diff.phase = phase;
    if (sides.first) {
      diff.max_over_mean_a = number_or(*sides.first, "max_over_mean", 0.0);
      diff.straggler_lane_a = number_or(*sides.first, "straggler_lane", 0.0);
    }
    if (sides.second) {
      diff.max_over_mean_b = number_or(*sides.second, "max_over_mean", 0.0);
      diff.straggler_lane_b = number_or(*sides.second, "straggler_lane", 0.0);
    }
    out.phases.push_back(std::move(diff));
  }
  return out;
}

RunSummary summarize_run(const RunInput& run) {
  RunSummary out;
  out.label = run.label;
  if (run.has_manifest) {
    out.driver = run.manifest.driver;
    out.config = run.manifest.config;
  }
  return out;
}

std::string summary_sentence(const DiffReport& report) {
  const DiffCounts& c = report.counts;
  std::string out = fmt("series %u: %u identical, %u within tolerance, %u improved, "
                        "%u regressed, %u added, %u removed",
                        c.compared, c.identical, c.within_tolerance, c.improved,
                        c.regressed, c.added, c.removed);
  if (report.critical_path.present) {
    const double delta = report.critical_path.makespan_b - report.critical_path.makespan_a;
    if (delta != 0.0) {
      out += "; makespan ";
      if (report.critical_path.makespan_a > 0.0) {
        out += fmt("%+.2f%%", delta / report.critical_path.makespan_a * 100.0);
      } else {
        out += fmt("%+g s", delta);
      }
      out += " (" + json_number(report.critical_path.makespan_a) + " s -> " +
             json_number(report.critical_path.makespan_b) + " s)";
      const AttributionCell* top = nullptr;
      for (const AttributionCell& cell : report.critical_path.cells) {
        const double d = cell.b_seconds - cell.a_seconds;
        if (!top || std::abs(d) > std::abs(top->b_seconds - top->a_seconds)) top = &cell;
      }
      if (top && top->b_seconds != top->a_seconds) {
        out += fmt(", %.0f%% attributed to %s on rank %u",
                   (top->b_seconds - top->a_seconds) / delta * 100.0,
                   top->phase.c_str(), top->lane);
      }
    } else {
      out += "; makespan unchanged";
    }
  }
  out += diff_regression(report) ? "; verdict: REGRESSION" : "; verdict: ok";
  return out;
}

}  // namespace

bool diff_regression(const DiffReport& report) noexcept {
  return report.counts.regressed > 0 || report.counts.removed > 0 ||
         !report.incidents.added.empty() || report.slo_newly_violated > 0;
}

DiffReport diff_runs(const RunInput& a, const RunInput& b, const DiffOptions& options) {
  DiffReport report;
  report.run_a = summarize_run(a);
  report.run_b = summarize_run(b);
  report.tolerances = options.tolerances;

  // Config drift: informational — comparing two *different* configurations
  // is the tool's purpose, but the reader must see which knobs moved.
  if (a.has_manifest && b.has_manifest) {
    std::map<std::string, std::pair<std::string, std::string>> merged;
    for (const auto& [key, value] : a.manifest.config) merged[key].first = value;
    for (const auto& [key, value] : b.manifest.config) merged[key].second = value;
    for (const auto& [key, values] : merged) {
      if (values.first != values.second) report.config_changes.push_back({key, values});
    }
  }

  {
    std::map<std::string, ArtifactDelta> merged;
    const auto collect = [&merged](const RunInput& run, bool side_b) {
      for (const auto& [name, digest] : run.digests) {
        ArtifactDelta& entry = merged[name];
        entry.name = name;
        (side_b ? entry.in_b : entry.in_a) = true;
        if (entry.schema.empty()) {
          if (run.has_manifest) {
            for (const RunArtifact& artifact : run.manifest.artifacts) {
              if (artifact.name == name) entry.schema = artifact.schema;
            }
          } else {
            entry.schema = std::string(schema_for_kind(name));
          }
        }
        // Stash the digest in `identical` later; compare via the maps below.
      }
    };
    collect(a, false);
    collect(b, true);
    for (auto& [name, entry] : merged) {
      if (entry.in_a && entry.in_b) {
        std::string da, db;
        for (const auto& [n, d] : a.digests) {
          if (n == name) da = d;
        }
        for (const auto& [n, d] : b.digests) {
          if (n == name) db = d;
        }
        entry.identical = da == db;
      }
      report.artifacts.push_back(std::move(entry));
    }
  }

  // Generic series pass over artifact kinds present on BOTH sides (coverage
  // asymmetry is reported in the artifact table, not turned into thousands
  // of added/removed series).
  SeriesMap series_a, series_b;
  for (const auto& [role, doc] : a.docs) {
    if (find_doc(b, role)) flatten_role(role, doc, series_a);
  }
  for (const auto& [role, doc] : b.docs) {
    if (find_doc(a, role)) flatten_role(role, doc, series_b);
  }
  auto it_a = series_a.begin();
  auto it_b = series_b.begin();
  const auto classify = [&report, &options](const std::string& name, bool has_a,
                                            double va, bool has_b, double vb) {
    ++report.counts.compared;
    SeriesDelta delta;
    delta.series = name;
    delta.has_a = has_a;
    delta.has_b = has_b;
    delta.a = va;
    delta.b = vb;
    if (has_a && has_b && va == vb) {
      ++report.counts.identical;
      return;
    }
    if (!has_a) {
      delta.cls = DeltaClass::kAdded;
      ++report.counts.added;
    } else if (!has_b) {
      delta.cls = DeltaClass::kRemoved;
      ++report.counts.removed;
    } else {
      const ToleranceRule* covering = nullptr;
      for (const ToleranceRule& rule : options.tolerances) {
        if (glob_match(rule.glob, name)) covering = &rule;  // last match wins
      }
      const double gap = std::abs(vb - va);
      if (covering &&
          (covering->relative
               ? gap <= covering->bound * std::max(std::abs(va), std::abs(vb))
               : gap <= covering->bound)) {
        delta.cls = DeltaClass::kWithinTolerance;
        delta.tolerance = covering->glob;
        ++report.counts.within_tolerance;
      } else if ((vb < va) == lower_is_better(name)) {
        delta.cls = DeltaClass::kImproved;
        ++report.counts.improved;
      } else {
        delta.cls = DeltaClass::kRegressed;
        ++report.counts.regressed;
      }
    }
    report.series.push_back(std::move(delta));
  };
  while (it_a != series_a.end() || it_b != series_b.end()) {
    if (it_b == series_b.end() || (it_a != series_a.end() && it_a->first < it_b->first)) {
      classify(it_a->first, true, it_a->second, false, 0.0);
      ++it_a;
    } else if (it_a == series_a.end() || it_b->first < it_a->first) {
      classify(it_b->first, false, 0.0, true, it_b->second);
      ++it_b;
    } else {
      classify(it_a->first, true, it_a->second, true, it_b->second);
      ++it_a, ++it_b;
    }
  }

  report.critical_path = diff_critical_path(find_doc(a, "analysis"), find_doc(b, "analysis"));
  report.kernels = diff_kernels(find_doc(a, "profile"), find_doc(b, "profile"));
  report.incidents = diff_incidents(find_doc(a, "health"), find_doc(b, "health"));
  report.slo = diff_slo(find_doc(a, "slo"), find_doc(b, "slo"));
  report.hostprof = diff_hostprof(find_doc(a, "hostprof"), find_doc(b, "hostprof"));
  for (const SloObjectiveDiff& objective : report.slo.objectives) {
    if (!objective.violated_a && objective.violated_b) ++report.slo_newly_violated;
  }
  report.summary = summary_sentence(report);
  return report;
}

// --- JSON rendering --------------------------------------------------------

namespace {

JsonValue run_side_json(const RunSummary& side) {
  JsonValue out = JsonValue::object();
  out.set("label", side.label);
  out.set("driver", side.driver);
  JsonValue config = JsonValue::object();
  for (const auto& [key, value] : side.config) config.set(key, value);
  out.set("config", std::move(config));
  return out;
}

JsonValue incident_json(const IncidentKey& incident) {
  JsonValue out = JsonValue::object();
  out.set("rule", incident.rule);
  out.set("kind", incident.kind);
  out.set("lane", static_cast<double>(incident.lane));
  out.set("tenant", incident.tenant);
  out.set("fired", incident.fired);
  out.set("cleared", incident.cleared);
  out.set("value", incident.value);
  return out;
}

}  // namespace

JsonValue diff_report_json(const DiffReport& report) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", kDiffSchema);

  JsonValue runs = JsonValue::object();
  runs.set("a", run_side_json(report.run_a));
  runs.set("b", run_side_json(report.run_b));
  doc.set("runs", std::move(runs));

  JsonValue tolerances = JsonValue::array();
  for (const ToleranceRule& rule : report.tolerances) {
    JsonValue entry = JsonValue::object();
    entry.set("glob", rule.glob);
    entry.set("mode", rule.relative ? "rel" : "abs");
    entry.set("bound", rule.bound);
    tolerances.push_back(std::move(entry));
  }
  doc.set("tolerances", std::move(tolerances));

  JsonValue config_changes = JsonValue::array();
  for (const auto& [key, values] : report.config_changes) {
    JsonValue entry = JsonValue::object();
    entry.set("key", key);
    entry.set("a", values.first);
    entry.set("b", values.second);
    config_changes.push_back(std::move(entry));
  }
  doc.set("config_changes", std::move(config_changes));

  JsonValue artifacts = JsonValue::array();
  for (const ArtifactDelta& artifact : report.artifacts) {
    JsonValue entry = JsonValue::object();
    entry.set("name", artifact.name);
    entry.set("schema", artifact.schema);
    entry.set("in_a", artifact.in_a);
    entry.set("in_b", artifact.in_b);
    entry.set("identical", artifact.identical);
    artifacts.push_back(std::move(entry));
  }
  doc.set("artifacts", std::move(artifacts));

  JsonValue counts = JsonValue::object();
  counts.set("compared", static_cast<std::uint64_t>(report.counts.compared));
  counts.set("identical", static_cast<std::uint64_t>(report.counts.identical));
  counts.set("within_tolerance", static_cast<std::uint64_t>(report.counts.within_tolerance));
  counts.set("improved", static_cast<std::uint64_t>(report.counts.improved));
  counts.set("regressed", static_cast<std::uint64_t>(report.counts.regressed));
  counts.set("added", static_cast<std::uint64_t>(report.counts.added));
  counts.set("removed", static_cast<std::uint64_t>(report.counts.removed));
  doc.set("counts", std::move(counts));

  JsonValue series = JsonValue::array();
  for (const SeriesDelta& delta : report.series) {
    JsonValue entry = JsonValue::object();
    entry.set("series", delta.series);
    entry.set("class", delta_class_name(delta.cls));
    if (delta.has_a) entry.set("a", delta.a);
    if (delta.has_b) entry.set("b", delta.b);
    if (delta.has_a && delta.has_b) {
      entry.set("delta", delta.b - delta.a);
      if (delta.a != 0.0) entry.set("rel", (delta.b - delta.a) / std::abs(delta.a));
    }
    if (!delta.tolerance.empty()) entry.set("tolerance", delta.tolerance);
    series.push_back(std::move(entry));
  }
  doc.set("series", std::move(series));

  if (report.critical_path.present) {
    const CriticalPathDiff& cp = report.critical_path;
    const double makespan_delta = cp.makespan_b - cp.makespan_a;
    JsonValue section = JsonValue::object();
    section.set("makespan_a", cp.makespan_a);
    section.set("makespan_b", cp.makespan_b);
    section.set("delta", makespan_delta);
    JsonValue cells = JsonValue::array();
    double attributed = 0.0;
    for (const AttributionCell& cell : cp.cells) {
      const double cell_delta = cell.b_seconds - cell.a_seconds;
      attributed += cell_delta;
      JsonValue entry = JsonValue::object();
      entry.set("phase", cell.phase);
      entry.set("lane", static_cast<double>(cell.lane));
      entry.set("a_seconds", cell.a_seconds);
      entry.set("b_seconds", cell.b_seconds);
      entry.set("delta", cell_delta);
      entry.set("share", makespan_delta != 0.0 ? cell_delta / makespan_delta : 0.0);
      cells.push_back(std::move(entry));
    }
    section.set("cells", std::move(cells));
    // cells + residual == makespan delta, *exactly*: the residual is defined
    // as whatever the tiles do not explain (floating-point dust included).
    section.set("residual", makespan_delta - attributed);
    doc.set("critical_path", std::move(section));
  }

  if (report.kernels.present) {
    const KernelDiff& k = report.kernels;
    JsonValue section = JsonValue::object();
    section.set("launches_a", k.launches_a);
    section.set("launches_b", k.launches_b);
    section.set("seconds_a", k.seconds_a);
    section.set("seconds_b", k.seconds_b);
    section.set("dram_bytes_a", k.dram_bytes_a);
    section.set("dram_bytes_b", k.dram_bytes_b);
    section.set("memory_bound_fraction_a", k.memory_bound_fraction_a);
    section.set("memory_bound_fraction_b", k.memory_bound_fraction_b);
    JsonValue rows = JsonValue::array();
    for (const KernelRowDiff& row : k.rows) {
      JsonValue entry = JsonValue::object();
      entry.set("rank", static_cast<double>(row.rank));
      entry.set("gpu", static_cast<double>(row.gpu));
      entry.set("iteration", static_cast<double>(row.iteration));
      entry.set("launches_a", row.launches_a);
      entry.set("launches_b", row.launches_b);
      entry.set("seconds_a", row.seconds_a);
      entry.set("seconds_b", row.seconds_b);
      entry.set("dram_bytes_a", row.dram_bytes_a);
      entry.set("dram_bytes_b", row.dram_bytes_b);
      entry.set("occupancy_a", row.occupancy_a);
      entry.set("occupancy_b", row.occupancy_b);
      entry.set("intensity_a", row.intensity_a);
      entry.set("intensity_b", row.intensity_b);
      entry.set("memory_bound_a", row.memory_bound_a);
      entry.set("memory_bound_b", row.memory_bound_b);
      rows.push_back(std::move(entry));
    }
    section.set("rows", std::move(rows));
    doc.set("kernels", std::move(section));
  }

  if (report.incidents.present) {
    JsonValue section = JsonValue::object();
    section.set("matched", static_cast<std::uint64_t>(report.incidents.matched));
    JsonValue added = JsonValue::array();
    for (const IncidentKey& incident : report.incidents.added) {
      added.push_back(incident_json(incident));
    }
    section.set("added", std::move(added));
    JsonValue removed = JsonValue::array();
    for (const IncidentKey& incident : report.incidents.removed) {
      removed.push_back(incident_json(incident));
    }
    section.set("removed", std::move(removed));
    doc.set("incidents", std::move(section));
  }

  if (report.slo.present) {
    JsonValue section = JsonValue::object();
    section.set("newly_violated", static_cast<std::uint64_t>(report.slo_newly_violated));
    JsonValue objectives = JsonValue::array();
    for (const SloObjectiveDiff& objective : report.slo.objectives) {
      JsonValue entry = JsonValue::object();
      entry.set("tenant", objective.tenant);
      entry.set("kind", objective.kind);
      entry.set("percentile", objective.percentile);
      entry.set("observed_a", objective.observed_a);
      entry.set("observed_b", objective.observed_b);
      entry.set("attainment_a", objective.attainment_a);
      entry.set("attainment_b", objective.attainment_b);
      entry.set("burn_a", objective.burn_a);
      entry.set("burn_b", objective.burn_b);
      entry.set("violated_a", objective.violated_a);
      entry.set("violated_b", objective.violated_b);
      objectives.push_back(std::move(entry));
    }
    section.set("objectives", std::move(objectives));
    doc.set("slo", std::move(section));
  }

  if (report.hostprof.present) {
    const HostprofDiff& h = report.hostprof;
    JsonValue section = JsonValue::object();
    section.set("wall_a", h.wall_a);
    section.set("wall_b", h.wall_b);
    section.set("eval_a", h.eval_a);
    section.set("eval_b", h.eval_b);
    section.set("tail_idle_a", h.tail_idle_a);
    section.set("tail_idle_b", h.tail_idle_b);
    section.set("combos_per_sec_a", h.combos_per_sec_a);
    section.set("combos_per_sec_b", h.combos_per_sec_b);
    JsonValue phases = JsonValue::array();
    for (const HostprofPhaseDiff& phase : h.phases) {
      JsonValue entry = JsonValue::object();
      entry.set("phase", phase.phase);
      entry.set("max_over_mean_a", phase.max_over_mean_a);
      entry.set("max_over_mean_b", phase.max_over_mean_b);
      entry.set("straggler_lane_a", phase.straggler_lane_a);
      entry.set("straggler_lane_b", phase.straggler_lane_b);
      phases.push_back(std::move(entry));
    }
    section.set("phases", std::move(phases));
    doc.set("hostprof", std::move(section));
  }

  JsonValue verdict = JsonValue::object();
  verdict.set("regression", diff_regression(report));
  verdict.set("regressed_series", static_cast<std::uint64_t>(report.counts.regressed));
  verdict.set("removed_series", static_cast<std::uint64_t>(report.counts.removed));
  verdict.set("incidents_added",
              static_cast<std::uint64_t>(report.incidents.added.size()));
  verdict.set("slo_newly_violated",
              static_cast<std::uint64_t>(report.slo_newly_violated));
  doc.set("verdict", std::move(verdict));
  doc.set("summary", report.summary);
  return doc;
}

// --- JSON parsing ----------------------------------------------------------

namespace {

RunSummary run_side_from_json(const JsonValue& side) {
  RunSummary out;
  out.label = member(side, "label", "diff run").as_string();
  out.driver = member(side, "driver", "diff run").as_string();
  const JsonValue& config = member(side, "config", "diff run");
  for (const auto& [key, value] : config.as_object()) {
    out.config.emplace_back(key, value.as_string());
  }
  return out;
}

IncidentKey incident_from_json(const JsonValue& entry) {
  IncidentKey out;
  out.rule = member(entry, "rule", "incident").as_string();
  out.kind = member(entry, "kind", "incident").as_string();
  out.lane = static_cast<std::uint32_t>(member(entry, "lane", "incident").as_number());
  out.tenant = member(entry, "tenant", "incident").as_string();
  out.fired = member(entry, "fired", "incident").as_number();
  out.cleared = member(entry, "cleared", "incident").as_number();
  out.value = member(entry, "value", "incident").as_number();
  return out;
}

}  // namespace

DiffReport diff_from_json(const JsonValue& doc) {
  require_schema<DiffError>(doc, kDiffSchema, "diff report");
  DiffReport report;
  const JsonValue& runs = member(doc, "runs", "diff report");
  report.run_a = run_side_from_json(member(runs, "a", "diff report"));
  report.run_b = run_side_from_json(member(runs, "b", "diff report"));

  for (const JsonValue& entry : member(doc, "tolerances", "diff report").as_array()) {
    ToleranceRule rule;
    rule.glob = member(entry, "glob", "tolerance").as_string();
    const std::string& mode = member(entry, "mode", "tolerance").as_string();
    if (mode != "rel" && mode != "abs") {
      throw DiffError("diff: tolerance mode must be rel|abs, got \"" + mode + "\"");
    }
    rule.relative = mode == "rel";
    rule.bound = member(entry, "bound", "tolerance").as_number();
    report.tolerances.push_back(std::move(rule));
  }

  for (const JsonValue& entry : member(doc, "config_changes", "diff report").as_array()) {
    report.config_changes.push_back(
        {member(entry, "key", "config change").as_string(),
         {member(entry, "a", "config change").as_string(),
          member(entry, "b", "config change").as_string()}});
  }

  for (const JsonValue& entry : member(doc, "artifacts", "diff report").as_array()) {
    ArtifactDelta artifact;
    artifact.name = member(entry, "name", "artifact delta").as_string();
    artifact.schema = member(entry, "schema", "artifact delta").as_string();
    artifact.in_a = member(entry, "in_a", "artifact delta").as_bool();
    artifact.in_b = member(entry, "in_b", "artifact delta").as_bool();
    artifact.identical = member(entry, "identical", "artifact delta").as_bool();
    report.artifacts.push_back(std::move(artifact));
  }

  const JsonValue& counts = member(doc, "counts", "diff report");
  const auto count = [&counts](const char* key) {
    return static_cast<std::uint32_t>(member(counts, key, "counts").as_number());
  };
  report.counts.compared = count("compared");
  report.counts.identical = count("identical");
  report.counts.within_tolerance = count("within_tolerance");
  report.counts.improved = count("improved");
  report.counts.regressed = count("regressed");
  report.counts.added = count("added");
  report.counts.removed = count("removed");

  for (const JsonValue& entry : member(doc, "series", "diff report").as_array()) {
    SeriesDelta delta;
    delta.series = member(entry, "series", "series delta").as_string();
    delta.cls = delta_class_from_name(member(entry, "class", "series delta").as_string());
    if (const JsonValue* a = entry.find("a")) {
      delta.has_a = true;
      delta.a = a->as_number();
    }
    if (const JsonValue* b = entry.find("b")) {
      delta.has_b = true;
      delta.b = b->as_number();
    }
    if (const JsonValue* tolerance = entry.find("tolerance")) {
      delta.tolerance = tolerance->as_string();
    }
    report.series.push_back(std::move(delta));
  }

  if (const JsonValue* section = doc.find("critical_path")) {
    report.critical_path.present = true;
    report.critical_path.makespan_a = member(*section, "makespan_a", "critical_path").as_number();
    report.critical_path.makespan_b = member(*section, "makespan_b", "critical_path").as_number();
    for (const JsonValue& entry : member(*section, "cells", "critical_path").as_array()) {
      AttributionCell cell;
      cell.phase = member(entry, "phase", "attribution cell").as_string();
      cell.lane = static_cast<std::uint32_t>(member(entry, "lane", "attribution cell").as_number());
      cell.a_seconds = member(entry, "a_seconds", "attribution cell").as_number();
      cell.b_seconds = member(entry, "b_seconds", "attribution cell").as_number();
      report.critical_path.cells.push_back(std::move(cell));
    }
  }

  if (const JsonValue* section = doc.find("kernels")) {
    KernelDiff& k = report.kernels;
    k.present = true;
    k.launches_a = member(*section, "launches_a", "kernels").as_number();
    k.launches_b = member(*section, "launches_b", "kernels").as_number();
    k.seconds_a = member(*section, "seconds_a", "kernels").as_number();
    k.seconds_b = member(*section, "seconds_b", "kernels").as_number();
    k.dram_bytes_a = member(*section, "dram_bytes_a", "kernels").as_number();
    k.dram_bytes_b = member(*section, "dram_bytes_b", "kernels").as_number();
    k.memory_bound_fraction_a =
        member(*section, "memory_bound_fraction_a", "kernels").as_number();
    k.memory_bound_fraction_b =
        member(*section, "memory_bound_fraction_b", "kernels").as_number();
    for (const JsonValue& entry : member(*section, "rows", "kernels").as_array()) {
      KernelRowDiff row;
      row.rank = static_cast<std::uint32_t>(member(entry, "rank", "kernel row").as_number());
      row.gpu = static_cast<std::uint32_t>(member(entry, "gpu", "kernel row").as_number());
      row.iteration =
          static_cast<std::uint32_t>(member(entry, "iteration", "kernel row").as_number());
      row.launches_a = member(entry, "launches_a", "kernel row").as_number();
      row.launches_b = member(entry, "launches_b", "kernel row").as_number();
      row.seconds_a = member(entry, "seconds_a", "kernel row").as_number();
      row.seconds_b = member(entry, "seconds_b", "kernel row").as_number();
      row.dram_bytes_a = member(entry, "dram_bytes_a", "kernel row").as_number();
      row.dram_bytes_b = member(entry, "dram_bytes_b", "kernel row").as_number();
      row.occupancy_a = member(entry, "occupancy_a", "kernel row").as_number();
      row.occupancy_b = member(entry, "occupancy_b", "kernel row").as_number();
      row.intensity_a = member(entry, "intensity_a", "kernel row").as_number();
      row.intensity_b = member(entry, "intensity_b", "kernel row").as_number();
      row.memory_bound_a = member(entry, "memory_bound_a", "kernel row").as_number();
      row.memory_bound_b = member(entry, "memory_bound_b", "kernel row").as_number();
      k.rows.push_back(std::move(row));
    }
  }

  if (const JsonValue* section = doc.find("incidents")) {
    report.incidents.present = true;
    report.incidents.matched =
        static_cast<std::uint32_t>(member(*section, "matched", "incidents").as_number());
    for (const JsonValue& entry : member(*section, "added", "incidents").as_array()) {
      report.incidents.added.push_back(incident_from_json(entry));
    }
    for (const JsonValue& entry : member(*section, "removed", "incidents").as_array()) {
      report.incidents.removed.push_back(incident_from_json(entry));
    }
  }

  if (const JsonValue* section = doc.find("slo")) {
    report.slo.present = true;
    report.slo_newly_violated =
        static_cast<std::uint32_t>(member(*section, "newly_violated", "slo").as_number());
    for (const JsonValue& entry : member(*section, "objectives", "slo").as_array()) {
      SloObjectiveDiff objective;
      objective.tenant = member(entry, "tenant", "slo objective").as_string();
      objective.kind = member(entry, "kind", "slo objective").as_string();
      objective.percentile = member(entry, "percentile", "slo objective").as_number();
      objective.observed_a = member(entry, "observed_a", "slo objective").as_number();
      objective.observed_b = member(entry, "observed_b", "slo objective").as_number();
      objective.attainment_a = member(entry, "attainment_a", "slo objective").as_number();
      objective.attainment_b = member(entry, "attainment_b", "slo objective").as_number();
      objective.burn_a = member(entry, "burn_a", "slo objective").as_number();
      objective.burn_b = member(entry, "burn_b", "slo objective").as_number();
      objective.violated_a = member(entry, "violated_a", "slo objective").as_bool();
      objective.violated_b = member(entry, "violated_b", "slo objective").as_bool();
      report.slo.objectives.push_back(std::move(objective));
    }
  }

  if (const JsonValue* section = doc.find("hostprof")) {
    HostprofDiff& h = report.hostprof;
    h.present = true;
    h.wall_a = member(*section, "wall_a", "hostprof").as_number();
    h.wall_b = member(*section, "wall_b", "hostprof").as_number();
    h.eval_a = member(*section, "eval_a", "hostprof").as_number();
    h.eval_b = member(*section, "eval_b", "hostprof").as_number();
    h.tail_idle_a = member(*section, "tail_idle_a", "hostprof").as_number();
    h.tail_idle_b = member(*section, "tail_idle_b", "hostprof").as_number();
    h.combos_per_sec_a = member(*section, "combos_per_sec_a", "hostprof").as_number();
    h.combos_per_sec_b = member(*section, "combos_per_sec_b", "hostprof").as_number();
    for (const JsonValue& entry : member(*section, "phases", "hostprof").as_array()) {
      HostprofPhaseDiff phase;
      phase.phase = member(entry, "phase", "hostprof phase").as_string();
      phase.max_over_mean_a = member(entry, "max_over_mean_a", "hostprof phase").as_number();
      phase.max_over_mean_b = member(entry, "max_over_mean_b", "hostprof phase").as_number();
      phase.straggler_lane_a = member(entry, "straggler_lane_a", "hostprof phase").as_number();
      phase.straggler_lane_b = member(entry, "straggler_lane_b", "hostprof phase").as_number();
      h.phases.push_back(std::move(phase));
    }
  }

  report.summary = member(doc, "summary", "diff report").as_string();
  return report;
}

// --- human rendering -------------------------------------------------------

std::string diff_text(const DiffReport& report, bool summary_only) {
  std::string out = "multihit run diff (" + std::string(kDiffSchema) + ")\n";
  out += "  A: " + report.run_a.label;
  if (!report.run_a.driver.empty()) out += " (" + report.run_a.driver + ")";
  out += "\n  B: " + report.run_b.label;
  if (!report.run_b.driver.empty()) out += " (" + report.run_b.driver + ")";
  out += "\n  " + report.summary + "\n";
  if (summary_only) return out;

  if (!report.config_changes.empty()) {
    out += "  config changes:\n";
    for (const auto& [key, values] : report.config_changes) {
      out += "    " + key + ": \"" + values.first + "\" -> \"" + values.second + "\"\n";
    }
  }
  for (const ArtifactDelta& artifact : report.artifacts) {
    if (artifact.in_a && artifact.in_b) continue;
    out += std::string("  artifact only in ") + (artifact.in_a ? "A" : "B") + ": " +
           artifact.name + "\n";
  }

  constexpr std::size_t kMaxSeriesLines = 40;
  std::size_t listed = 0;
  for (const SeriesDelta& delta : report.series) {
    if (listed == kMaxSeriesLines) {
      out += fmt("    ... and %zu more\n", report.series.size() - listed);
      break;
    }
    ++listed;
    out += "    " + std::string(delta_class_name(delta.cls)) + " " + delta.series;
    if (delta.has_a && delta.has_b) {
      out += ": " + json_number(delta.a) + " -> " + json_number(delta.b);
      if (delta.a != 0.0) out += fmt(" (%+.2f%%)", (delta.b - delta.a) / std::abs(delta.a) * 100.0);
    } else {
      out += ": " + json_number(delta.has_a ? delta.a : delta.b);
    }
    out += "\n";
  }

  if (report.critical_path.present) {
    const CriticalPathDiff& cp = report.critical_path;
    const double delta = cp.makespan_b - cp.makespan_a;
    out += "  critical path: makespan " + json_number(cp.makespan_a) + " s -> " +
           json_number(cp.makespan_b) + " s\n";
    std::vector<const AttributionCell*> moved;
    for (const AttributionCell& cell : cp.cells) {
      if (cell.a_seconds != cell.b_seconds) moved.push_back(&cell);
    }
    std::sort(moved.begin(), moved.end(), [](const AttributionCell* x, const AttributionCell* y) {
      const double dx = std::abs(x->b_seconds - x->a_seconds);
      const double dy = std::abs(y->b_seconds - y->a_seconds);
      if (dx != dy) return dx > dy;
      if (x->phase != y->phase) return x->phase < y->phase;
      return x->lane < y->lane;
    });
    constexpr std::size_t kMaxCells = 5;
    for (std::size_t i = 0; i < moved.size() && i < kMaxCells; ++i) {
      const AttributionCell& cell = *moved[i];
      const double cell_delta = cell.b_seconds - cell.a_seconds;
      out += fmt("    %s rank %u: %+g s", cell.phase.c_str(), cell.lane, cell_delta);
      if (delta != 0.0) out += fmt(" (%.0f%% of makespan delta)", cell_delta / delta * 100.0);
      out += "\n";
    }
  }

  if (report.kernels.present &&
      (report.kernels.seconds_a != report.kernels.seconds_b ||
       !report.kernels.rows.empty())) {
    out += fmt("  kernels: %g launches, %s s -> %s s, %zu row(s) moved\n",
               report.kernels.launches_b, json_number(report.kernels.seconds_a).c_str(),
               json_number(report.kernels.seconds_b).c_str(), report.kernels.rows.size());
  }
  if (report.incidents.present) {
    out += fmt("  incidents: %u matched, %zu added, %zu removed\n",
               report.incidents.matched, report.incidents.added.size(),
               report.incidents.removed.size());
    for (const IncidentKey& incident : report.incidents.added) {
      out += fmt("    added %s (%s) lane %u at %s s\n", incident.rule.c_str(),
                 incident.kind.c_str(), incident.lane, json_number(incident.fired).c_str());
    }
  }
  if (report.slo.present) {
    out += fmt("  slo: %zu objective(s) compared, %u newly violated\n",
               report.slo.objectives.size(), report.slo_newly_violated);
  }
  if (report.hostprof.present) {
    out += "  hostprof wall: " + json_number(report.hostprof.wall_a) + " s -> " +
           json_number(report.hostprof.wall_b) + " s (informational)\n";
  }
  return out;
}

}  // namespace multihit::obs
