#pragma once
// Machine-readable benchmark records: the repo's perf trajectory.
//
// Each bench target builds a BenchReporter, records its headline series
// (modeled times, efficiencies, overheads) through the embedded metrics
// registry, and writes BENCH_<name>.json next to the binary (or into
// $MULTIHIT_BENCH_DIR). scripts/bench_compare.py validates the schema and
// diffs the series against the committed baselines in bench/baselines/ —
// every future perf PR gets its before/after numbers from this file, not
// from eyeballing ASCII tables.
//
// Record schema (multihit.bench.v1):
//   {"schema": "multihit.bench.v1",
//    "bench": "<name>",
//    "series": [{"name": ..., "value": ..., "unit": ...}, ...],
//    "metrics": <MetricsRegistry snapshot>}
//
// `series` is the ordered headline list the regression gate compares;
// `metrics` is the full registry snapshot for drill-down.

#include <string>
#include <string_view>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/schema.hpp"

namespace multihit::obs {

class BenchReporter {
 public:
  explicit BenchReporter(std::string_view bench_name);

  /// The registry backing this record; instrument freely, everything lands
  /// in the "metrics" section of the written file.
  MetricsRegistry& metrics() noexcept { return metrics_; }

  /// Records one headline series point (also lands in the registry as gauge
  /// `bench.<key>` so the metrics section is self-contained).
  void series(std::string_view key, double value, std::string_view unit = "");

  /// The complete record document.
  JsonValue record() const;

  /// Output path: $MULTIHIT_BENCH_DIR/BENCH_<name>.json (directory defaults
  /// to the current working directory).
  std::string path() const;

  /// Writes record() to path(); returns false (and logs a warning) on I/O
  /// failure — bench binaries still print their tables either way.
  bool write() const;

 private:
  struct SeriesPoint {
    std::string name;
    double value;
    std::string unit;
  };

  std::string name_;
  MetricsRegistry metrics_;
  std::vector<SeriesPoint> series_;
};

}  // namespace multihit::obs
