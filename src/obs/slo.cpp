#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/schema.hpp"

namespace multihit::obs {

const char* slo_kind_name(SloKind kind) noexcept {
  switch (kind) {
    case SloKind::kLatency:
      return "latency";
    case SloKind::kAdmission:
      return "admission";
    case SloKind::kBudget:
      return "budget";
  }
  return "?";
}

std::vector<SloObjective> parse_slo(std::string_view text) {
  std::vector<SloObjective> spec;
  std::istringstream lines{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const auto fail = [&](const std::string& what) {
      throw SloError("slo line " + std::to_string(line_no) + ": " + what);
    };
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream words(line);
    std::vector<std::string> tok;
    for (std::string w; words >> w;) tok.push_back(w);
    if (tok.empty()) continue;
    if (tok[0] != "slo" || tok.size() < 4) {
      fail("expected: slo TENANT latency|admission|budget ...");
    }
    const auto parse_num = [&](const std::string& word) {
      char* end = nullptr;
      const double v = std::strtod(word.c_str(), &end);
      if (end != word.c_str() + word.size() || !std::isfinite(v)) {
        fail("expected a number, got '" + word + "'");
      }
      return v;
    };
    SloObjective o;
    o.tenant = tok[1];
    const std::string& kind = tok[2];
    if (kind == "latency") {
      if (tok.size() != 6 || tok[4] != "below") {
        fail("expected: slo TENANT latency pP below SECONDS");
      }
      o.kind = SloKind::kLatency;
      if (tok[3].size() < 2 || tok[3][0] != 'p') {
        fail("expected a percentile like p99, got '" + tok[3] + "'");
      }
      o.percentile = parse_num(tok[3].substr(1));
      if (!(o.percentile > 0.0) || o.percentile > 100.0) {
        fail("percentile must be in (0, 100]");
      }
      o.target = parse_num(tok[5]);
      if (!(o.target > 0.0)) fail("latency target must be positive");
    } else if (kind == "admission") {
      if (tok.size() != 5 || tok[3] != "above") {
        fail("expected: slo TENANT admission above FRACTION");
      }
      o.kind = SloKind::kAdmission;
      o.target = parse_num(tok[4]);
      if (!(o.target > 0.0) || o.target > 1.0) fail("admission target must be in (0, 1]");
    } else if (kind == "budget") {
      if ((tok.size() != 6 && tok.size() != 8) || tok[4] != "window") {
        fail("expected: slo TENANT budget FRACTION window SECONDS [fast SECONDS]");
      }
      o.kind = SloKind::kBudget;
      o.target = parse_num(tok[3]);
      if (!(o.target > 0.0) || o.target >= 1.0) fail("budget must be in (0, 1)");
      o.window = parse_num(tok[5]);
      if (!(o.window > 0.0)) fail("window must be positive");
      if (tok.size() == 8) {
        if (tok[6] != "fast") fail("expected 'fast', got '" + tok[6] + "'");
        o.fast_window = parse_num(tok[7]);
        if (!(o.fast_window > 0.0) || o.fast_window >= o.window) {
          fail("fast window must be positive and below the slow window");
        }
      } else {
        o.fast_window = o.window / 12.0;  // the SRE 1h/5m ratio
      }
    } else {
      fail("unknown objective kind '" + kind + "'");
    }
    spec.push_back(std::move(o));
  }
  return spec;
}

double latency_target(const std::vector<SloObjective>& spec, std::string_view tenant) {
  double target = std::numeric_limits<double>::infinity();
  for (const SloObjective& o : spec) {
    if (o.kind != SloKind::kLatency) continue;
    if (o.tenant != "*" && o.tenant != tenant) continue;
    target = std::min(target, o.target);
  }
  return target;
}

std::string series_with_labels(std::string_view base, SeriesLabels labels) {
  const auto bad = [&](const std::string& what) {
    throw SloError("series '" + std::string(base) + "': " + what);
  };
  if (base.empty()) bad("empty base name");
  if (base.find_first_of("{},=") != std::string_view::npos) {
    bad("base name may not contain '{', '}', ',' or '='");
  }
  if (labels.empty()) return std::string(base);
  std::sort(labels.begin(), labels.end());
  std::string out{base};
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const auto& [key, value] = labels[i];
    if (key.empty() || value.empty()) bad("labels need nonempty keys and values");
    if ((key + value).find_first_of("{},=") != std::string::npos) {
      bad("label keys and values may not contain '{', '}', ',' or '='");
    }
    if (i > 0) out += ',';
    out += key;
    out += '=';
    out += value;
  }
  out += '}';
  return out;
}

std::pair<std::string, SeriesLabels> split_series_labels(std::string_view name) {
  const auto bad = [&](const std::string& what) {
    throw SloError("malformed series selector '" + std::string(name) + "': " + what);
  };
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos) {
    if (name.empty()) bad("empty series name");
    if (name.find_first_of("},=") != std::string_view::npos) {
      bad("unlabeled series may not contain '}', ',' or '='");
    }
    return {std::string(name), {}};
  }
  if (brace == 0) bad("empty base name before '{'");
  if (name.back() != '}') bad("missing closing '}'");
  const std::string base{name.substr(0, brace)};
  if (base.find_first_of("},=") != std::string::npos) bad("stray '}', ',' or '=' in base");
  SeriesLabels labels;
  std::string_view body = name.substr(brace + 1, name.size() - brace - 2);
  if (body.empty()) bad("empty label list");
  while (!body.empty()) {
    const std::size_t comma = body.find(',');
    const std::string_view pair =
        comma == std::string_view::npos ? body : body.substr(0, comma);
    body = comma == std::string_view::npos ? std::string_view{} : body.substr(comma + 1);
    if (comma != std::string_view::npos && body.empty()) bad("trailing ','");
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) bad("label '" + std::string(pair) + "' needs key=value");
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value = pair.substr(eq + 1);
    if (key.empty() || value.empty()) {
      bad("label '" + std::string(pair) + "' needs a nonempty key and value");
    }
    if (value.find('=') != std::string_view::npos) {
      bad("label '" + std::string(pair) + "' has a stray '='");
    }
    labels.emplace_back(std::string(key), std::string(value));
  }
  std::sort(labels.begin(), labels.end());
  return {base, std::move(labels)};
}

std::string series_tenant(std::string_view name) {
  if (name.find('{') == std::string_view::npos) return {};
  const auto [base, labels] = split_series_labels(name);
  (void)base;
  for (const auto& [key, value] : labels) {
    if (key == "tenant") return value;
  }
  return {};
}

SloInput slo_input_from_serve_json(const JsonValue& doc) {
  require_schema<SloError>(doc, kServeSchema, "serve report");
  const JsonValue* jobs = doc.find("jobs");
  if (!jobs || !jobs->is_array()) throw SloError("serve report has no jobs array");
  SloInput input;
  input.jobs.reserve(jobs->size());
  for (std::size_t i = 0; i < jobs->size(); ++i) {
    const JsonValue& entry = jobs->at(i);
    const JsonValue* tenant = entry.find("tenant");
    const JsonValue* arrival = entry.find("arrival");
    const JsonValue* finish = entry.find("finish");
    const JsonValue* outcome = entry.find("outcome");
    const JsonValue* cache_hit = entry.find("cache_hit");
    if (!tenant || !tenant->is_string() || !arrival || !arrival->is_number() || !finish ||
        !finish->is_number() || !outcome || !outcome->is_string() || !cache_hit ||
        !cache_hit->is_bool()) {
      throw SloError("serve job " + std::to_string(i) +
                     " missing tenant/arrival/finish/outcome/cache_hit");
    }
    SloJob job;
    job.tenant = tenant->as_string();
    job.arrival = arrival->as_number();
    job.finish = finish->as_number();
    job.rejected = outcome->as_string() != "completed";
    job.cache_hit = cache_hit->as_bool();
    if (!job.rejected) {
      const JsonValue* latency = entry.find("latency");
      if (!latency || !latency->is_number()) {
        throw SloError("serve job " + std::to_string(i) + " completed without a latency");
      }
      job.latency = latency->as_number();
    }
    input.jobs.push_back(std::move(job));
  }
  return input;
}

namespace {

/// One resolved request on the budget timeline: rejected requests resolve at
/// arrival (the shed decision), completed ones at finish.
struct BudgetEvent {
  double at = 0.0;
  bool bad = false;
};

/// Worst trailing-window bad fraction over budget, across every event time.
/// `events` must be sorted by time.
double max_burn(const std::vector<BudgetEvent>& events, double window, double budget) {
  double worst = 0.0;
  std::size_t lo = 0;
  std::uint32_t bad = 0;
  for (std::size_t hi = 0; hi < events.size(); ++hi) {
    if (events[hi].bad) ++bad;
    while (events[lo].at < events[hi].at - window) {
      if (events[lo].bad) --bad;
      ++lo;
    }
    const double frac = static_cast<double>(bad) / static_cast<double>(hi - lo + 1);
    worst = std::max(worst, frac / budget);
  }
  return worst;
}

}  // namespace

SloReport evaluate_slo(const SloInput& input, const std::vector<SloObjective>& spec) {
  SloReport report;
  report.spec = spec;

  std::set<std::string> tenant_names;
  for (const SloJob& job : input.jobs) tenant_names.insert(job.tenant);
  for (const SloObjective& o : spec) {
    if (o.tenant != "*") tenant_names.insert(o.tenant);
  }

  for (const std::string& name : tenant_names) {
    SloTenantReport tenant;
    tenant.tenant = name;
    const double target = latency_target(spec, name);
    Histogram latencies;
    std::vector<BudgetEvent> events;
    for (const SloJob& job : input.jobs) {
      if (job.tenant != name) continue;
      BudgetEvent ev;
      if (job.rejected) {
        ++tenant.rejected;
        ev.at = job.arrival;
        ev.bad = true;
      } else {
        ++tenant.completed;
        if (job.cache_hit) ++tenant.cache_hits;
        latencies.observe(job.latency);
        ev.at = job.finish;
        ev.bad = job.latency > target;
      }
      if (ev.bad) ++tenant.bad;
      events.push_back(ev);
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const BudgetEvent& a, const BudgetEvent& b) { return a.at < b.at; });
    const auto total = static_cast<std::uint32_t>(events.size());

    for (const SloObjective& o : spec) {
      if (o.tenant != "*" && o.tenant != name) continue;
      SloObjectiveResult res;
      res.objective = o;
      res.objective.tenant = name;
      switch (o.kind) {
        case SloKind::kLatency: {
          res.observed = latencies.percentile(o.percentile);
          std::uint32_t met = 0;
          for (const SloJob& job : input.jobs) {
            if (job.tenant == name && !job.rejected && job.latency <= o.target) ++met;
          }
          res.attainment = tenant.completed > 0
                               ? static_cast<double>(met) / static_cast<double>(tenant.completed)
                               : 1.0;
          res.violated = tenant.completed > 0 && res.observed > o.target;
          break;
        }
        case SloKind::kAdmission: {
          res.observed = total > 0 ? static_cast<double>(tenant.completed) /
                                         static_cast<double>(total)
                                   : 1.0;
          res.attainment = res.observed;
          res.violated = res.observed < o.target;
          break;
        }
        case SloKind::kBudget: {
          res.observed = total > 0 ? (static_cast<double>(tenant.bad) /
                                      static_cast<double>(total)) /
                                         o.target
                                   : 0.0;
          res.attainment = std::clamp(1.0 - res.observed, 0.0, 1.0);
          res.max_slow_burn = max_burn(events, o.window, o.target);
          res.max_fast_burn = max_burn(events, o.fast_window, o.target);
          res.violated = res.observed > 1.0;
          report.worst_burn =
              std::max({report.worst_burn, res.max_fast_burn, res.max_slow_burn});
          break;
        }
      }
      if (o.kind == SloKind::kLatency && o.percentile == 99.0) {
        report.worst_p99_attainment = std::min(report.worst_p99_attainment, res.attainment);
      }
      ++report.objectives;
      if (res.violated) ++report.violated;
      tenant.objectives.push_back(std::move(res));
    }
    report.tenants.push_back(std::move(tenant));
  }
  return report;
}

JsonValue slo_report_json(const SloReport& report) {
  const auto objective_fields = [](JsonValue& entry, const SloObjective& o) {
    entry.set("tenant", o.tenant);
    entry.set("kind", std::string(slo_kind_name(o.kind)));
    if (o.kind == SloKind::kLatency) entry.set("percentile", o.percentile);
    entry.set("target", o.target);
    if (o.kind == SloKind::kBudget) {
      entry.set("window", o.window);
      entry.set("fast_window", o.fast_window);
    }
  };

  JsonValue doc = JsonValue::object();
  doc.set("schema", std::string(kSloSchema));

  JsonValue spec = JsonValue::array();
  for (const SloObjective& o : report.spec) {
    JsonValue entry = JsonValue::object();
    objective_fields(entry, o);
    spec.push_back(std::move(entry));
  }
  doc.set("objectives", std::move(spec));

  JsonValue tenants = JsonValue::array();
  for (const SloTenantReport& tenant : report.tenants) {
    JsonValue entry = JsonValue::object();
    entry.set("tenant", tenant.tenant);
    entry.set("completed", static_cast<std::uint64_t>(tenant.completed));
    entry.set("rejected", static_cast<std::uint64_t>(tenant.rejected));
    entry.set("cache_hits", static_cast<std::uint64_t>(tenant.cache_hits));
    entry.set("bad", static_cast<std::uint64_t>(tenant.bad));
    JsonValue results = JsonValue::array();
    for (const SloObjectiveResult& res : tenant.objectives) {
      JsonValue r = JsonValue::object();
      objective_fields(r, res.objective);
      r.set("observed", res.observed);
      r.set("attainment", res.attainment);
      if (res.objective.kind == SloKind::kBudget) {
        r.set("max_fast_burn", res.max_fast_burn);
        r.set("max_slow_burn", res.max_slow_burn);
      }
      r.set("violated", res.violated);
      results.push_back(std::move(r));
    }
    entry.set("objectives", std::move(results));
    tenants.push_back(std::move(entry));
  }
  doc.set("tenants", std::move(tenants));

  JsonValue summary = JsonValue::object();
  summary.set("tenants", static_cast<std::uint64_t>(report.tenants.size()));
  summary.set("objectives", static_cast<std::uint64_t>(report.objectives));
  summary.set("violated", static_cast<std::uint64_t>(report.violated));
  summary.set("worst_burn", report.worst_burn);
  summary.set("worst_p99_attainment", report.worst_p99_attainment);
  doc.set("summary", std::move(summary));
  return doc;
}

std::string slo_text(const SloReport& report, bool summary_only) {
  std::string out = "multihit serve SLO (" + std::string(kSloSchema) + ")\n";
  out += "  tenants " + std::to_string(report.tenants.size()) + ", objectives " +
         std::to_string(report.objectives) + " (" + std::to_string(report.violated) +
         " violated)\n";
  out += "  worst burn " + json_number(report.worst_burn) + "x budget, worst p99 attainment " +
         json_number(report.worst_p99_attainment) + "\n";
  if (summary_only) return out;
  for (const SloTenantReport& tenant : report.tenants) {
    out += "  tenant " + tenant.tenant + ": completed " + std::to_string(tenant.completed) +
           ", rejected " + std::to_string(tenant.rejected) + ", cache hits " +
           std::to_string(tenant.cache_hits) + ", bad " + std::to_string(tenant.bad) + "\n";
    for (const SloObjectiveResult& res : tenant.objectives) {
      const SloObjective& o = res.objective;
      out += res.violated ? "    [VIOLATED] " : "    [ok] ";
      switch (o.kind) {
        case SloKind::kLatency:
          out += "latency p" + json_number(o.percentile) + " below " + json_number(o.target) +
                 " s: observed " + json_number(res.observed) + " s, attainment " +
                 json_number(res.attainment);
          break;
        case SloKind::kAdmission:
          out += "admission above " + json_number(o.target) + ": observed " +
                 json_number(res.observed);
          break;
        case SloKind::kBudget:
          out += "budget " + json_number(o.target) + " over " + json_number(o.window) +
                 " s (fast " + json_number(o.fast_window) + " s): consumed " +
                 json_number(res.observed) + "x, burn fast " + json_number(res.max_fast_burn) +
                 "x / slow " + json_number(res.max_slow_burn) + "x";
          break;
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace multihit::obs
