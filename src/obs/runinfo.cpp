#include "obs/runinfo.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/schema.hpp"

namespace multihit::obs {

std::string content_digest(std::string_view bytes) {
  // FNV-1a, 64-bit: deterministic, endian-free, and cheap enough to run on
  // every artifact at manifest-write time.
  std::uint64_t hash = 14695981039346656037ull;
  for (unsigned char byte : bytes) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

void set_config(RunManifest& manifest, std::string key, std::string value) {
  auto pos = std::lower_bound(
      manifest.config.begin(), manifest.config.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (pos != manifest.config.end() && pos->first == key) {
    pos->second = std::move(value);
    return;
  }
  manifest.config.insert(pos, {std::move(key), std::move(value)});
}

void add_artifact_from_file(RunManifest& manifest, std::string name,
                            std::string schema, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw RuninfoError("runinfo: cannot read artifact \"" + path + "\"");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();

  RunArtifact artifact;
  artifact.name = std::move(name);
  artifact.path = path;
  artifact.schema = std::move(schema);
  artifact.digest = content_digest(bytes);
  artifact.bytes = bytes.size();
  auto pos = std::lower_bound(
      manifest.artifacts.begin(), manifest.artifacts.end(), artifact.name,
      [](const RunArtifact& a, const std::string& n) { return a.name < n; });
  manifest.artifacts.insert(pos, std::move(artifact));
}

JsonValue manifest_json(const RunManifest& manifest) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", kRunSchema);
  doc.set("driver", manifest.driver);
  JsonValue config = JsonValue::object();
  for (const auto& [key, value] : manifest.config) config.set(key, value);
  doc.set("config", std::move(config));
  JsonValue artifacts = JsonValue::array();
  for (const RunArtifact& artifact : manifest.artifacts) {
    JsonValue entry = JsonValue::object();
    entry.set("name", artifact.name);
    entry.set("schema", artifact.schema);
    entry.set("path", artifact.path);
    entry.set("bytes", artifact.bytes);
    entry.set("digest", artifact.digest);
    artifacts.push_back(std::move(entry));
  }
  doc.set("artifacts", std::move(artifacts));
  return doc;
}

namespace {

const JsonValue& member(const JsonValue& obj, std::string_view key,
                        const char* what) {
  const JsonValue* value = obj.find(key);
  if (!value) {
    throw RuninfoError(std::string("runinfo: ") + what + " is missing \"" +
                       std::string(key) + "\"");
  }
  return *value;
}

}  // namespace

RunManifest manifest_from_json(const JsonValue& doc) {
  require_schema<RuninfoError>(doc, kRunSchema, "run manifest");
  RunManifest manifest;
  manifest.driver = member(doc, "driver", "manifest").as_string();
  const JsonValue& config = member(doc, "config", "manifest");
  if (!config.is_object()) throw RuninfoError("runinfo: \"config\" is not an object");
  for (const auto& [key, value] : config.as_object()) {
    if (!value.is_string()) {
      throw RuninfoError("runinfo: config value for \"" + key + "\" is not a string");
    }
    manifest.config.emplace_back(key, value.as_string());
  }
  const JsonValue& artifacts = member(doc, "artifacts", "manifest");
  if (!artifacts.is_array()) throw RuninfoError("runinfo: \"artifacts\" is not an array");
  for (const JsonValue& entry : artifacts.as_array()) {
    if (!entry.is_object()) throw RuninfoError("runinfo: artifact entry is not an object");
    RunArtifact artifact;
    artifact.name = member(entry, "name", "artifact entry").as_string();
    artifact.schema = member(entry, "schema", "artifact entry").as_string();
    artifact.path = member(entry, "path", "artifact entry").as_string();
    artifact.bytes = static_cast<std::uint64_t>(
        member(entry, "bytes", "artifact entry").as_number());
    artifact.digest = member(entry, "digest", "artifact entry").as_string();
    manifest.artifacts.push_back(std::move(artifact));
  }
  return manifest;
}

std::string manifest_artifact_path(const std::string& artifact_path,
                                   const std::string& manifest_path) {
  namespace fs = std::filesystem;
  const fs::path artifact = fs::absolute(artifact_path).lexically_normal();
  const fs::path dir = fs::absolute(manifest_path).lexically_normal().parent_path();
  const fs::path relative = artifact.lexically_relative(dir);
  if (!relative.empty() && relative.native().rfind("..", 0) != 0) {
    return relative.string();
  }
  return artifact.string();
}

bool write_manifest(const RunManifest& manifest, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << manifest_json(manifest).dump() << '\n';
  return static_cast<bool>(out);
}

}  // namespace multihit::obs
