#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace multihit::obs {

namespace {

constexpr double kMicros = 1e6;  // simulated seconds -> trace microseconds

JsonValue args_json(const SpanArgs& args) {
  JsonValue::Object object;
  for (const auto& [k, v] : args) object.emplace_back(k, JsonValue(v));
  return JsonValue(std::move(object));
}

}  // namespace

void Tracer::complete(std::uint32_t lane, std::string_view name, std::string_view category,
                      double begin, double end, SpanArgs args) {
  if (!(end >= begin) || !std::isfinite(begin) || !std::isfinite(end)) {
    throw std::invalid_argument("Tracer::complete: span must satisfy begin <= end (finite)");
  }
  events_.push_back(TraceEvent{std::string(name), std::string(category), lane, begin, end,
                               /*instant=*/false, std::move(args)});
}

void Tracer::instant(std::uint32_t lane, std::string_view name, std::string_view category,
                     double at, SpanArgs args) {
  if (!std::isfinite(at)) {
    throw std::invalid_argument("Tracer::instant: timestamp must be finite");
  }
  events_.push_back(TraceEvent{std::string(name), std::string(category), lane, at, at,
                               /*instant=*/true, std::move(args)});
}

void Tracer::flow(std::uint32_t from_lane, double from_time, std::uint32_t to_lane,
                  double to_time, std::string_view name, std::string_view category,
                  bool binding, SpanArgs args) {
  if (!(to_time >= from_time) || !std::isfinite(from_time) || !std::isfinite(to_time)) {
    throw std::invalid_argument(
        "Tracer::flow: edge must satisfy from_time <= to_time (finite)");
  }
  flows_.push_back(FlowEdge{std::string(name), std::string(category), from_lane, to_lane,
                            from_time, to_time, binding, std::move(args)});
}

void Tracer::counter(std::uint32_t lane, std::string_view name, double at, double value) {
  if (!std::isfinite(at) || !std::isfinite(value)) {
    throw std::invalid_argument("Tracer::counter: timestamp and value must be finite");
  }
  counters_.push_back(CounterSample{std::string(name), lane, at, value});
}

void Tracer::set_lane_name(std::uint32_t lane, std::string_view name) {
  for (auto& [l, n] : lane_names_) {
    if (l == lane) {
      n = std::string(name);
      return;
    }
  }
  lane_names_.emplace_back(lane, std::string(name));
}

bool Tracer::per_lane_monotone() const {
  std::map<std::uint32_t, double> last_begin;
  for (const TraceEvent& event : events_) {
    auto [it, inserted] = last_begin.try_emplace(event.lane, event.begin);
    if (!inserted) {
      if (event.begin < it->second) return false;
      it->second = event.begin;
    }
  }
  return true;
}

JsonValue Tracer::chrome_trace() const {
  JsonValue::Array trace_events;

  // Metadata first: process name plus any named lanes.
  {
    JsonValue process;
    process.set("ph", JsonValue("M"));
    process.set("name", JsonValue("process_name"));
    process.set("pid", JsonValue(0));
    process.set("tid", JsonValue(0));
    JsonValue args;
    args.set("name", JsonValue("multihit-sim"));
    process.set("args", std::move(args));
    trace_events.push_back(std::move(process));
  }
  std::vector<std::pair<std::uint32_t, std::string>> lanes = lane_names_;
  std::sort(lanes.begin(), lanes.end());
  for (const auto& [lane, name] : lanes) {
    JsonValue thread;
    thread.set("ph", JsonValue("M"));
    thread.set("name", JsonValue("thread_name"));
    thread.set("pid", JsonValue(0));
    thread.set("tid", JsonValue(static_cast<double>(lane)));
    JsonValue args;
    args.set("name", JsonValue(name));
    thread.set("args", std::move(args));
    trace_events.push_back(std::move(thread));
  }

  // Span/instant events sorted so viewers nest contained spans correctly:
  // by lane, then start time, then longest-first among equal starts.
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(events_.size());
  for (const TraceEvent& event : events_) ordered.push_back(&event);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     if (a->lane != b->lane) return a->lane < b->lane;
                     if (a->begin != b->begin) return a->begin < b->begin;
                     return a->duration() > b->duration();
                   });
  for (const TraceEvent* event : ordered) {
    JsonValue entry;
    entry.set("name", JsonValue(event->name));
    entry.set("cat", JsonValue(event->category));
    entry.set("ph", JsonValue(event->instant ? "i" : "X"));
    entry.set("pid", JsonValue(0));
    entry.set("tid", JsonValue(static_cast<double>(event->lane)));
    entry.set("ts", JsonValue(event->begin * kMicros));
    if (event->instant) {
      entry.set("s", JsonValue("t"));  // instant scope: thread
    } else {
      entry.set("dur", JsonValue(event->duration() * kMicros));
    }
    if (!event->args.empty()) entry.set("args", args_json(event->args));
    trace_events.push_back(std::move(entry));
  }

  // Counter-track samples after the spans, in insertion order. Chrome "C"
  // events carry the sampled value as a *number* in args (unlike span args,
  // which this exporter keeps as strings).
  for (const CounterSample& sample : counters_) {
    JsonValue entry;
    entry.set("name", JsonValue(sample.name));
    entry.set("cat", JsonValue("counter"));
    entry.set("ph", JsonValue("C"));
    entry.set("pid", JsonValue(0));
    entry.set("tid", JsonValue(static_cast<double>(sample.lane)));
    entry.set("ts", JsonValue(sample.at * kMicros));
    JsonValue args;
    args.set("value", JsonValue(sample.value));
    entry.set("args", std::move(args));
    trace_events.push_back(std::move(entry));
  }

  // Flow edges last, in insertion order (deterministic); each edge is an
  // "s"/"f" pair sharing its index as the flow id. "bp":"e" binds the finish
  // to the enclosing slice, which is how Perfetto draws the arrowhead.
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const FlowEdge& edge = flows_[i];
    JsonValue start;
    start.set("name", JsonValue(edge.name));
    start.set("cat", JsonValue(edge.category));
    start.set("ph", JsonValue("s"));
    start.set("id", JsonValue(static_cast<double>(i)));
    start.set("pid", JsonValue(0));
    start.set("tid", JsonValue(static_cast<double>(edge.from_lane)));
    start.set("ts", JsonValue(edge.from_time * kMicros));
    {
      SpanArgs args = edge.args;
      args.emplace_back("binding", edge.binding ? "true" : "false");
      start.set("args", args_json(args));
    }
    trace_events.push_back(std::move(start));

    JsonValue finish;
    finish.set("name", JsonValue(edge.name));
    finish.set("cat", JsonValue(edge.category));
    finish.set("ph", JsonValue("f"));
    finish.set("bp", JsonValue("e"));
    finish.set("id", JsonValue(static_cast<double>(i)));
    finish.set("pid", JsonValue(0));
    finish.set("tid", JsonValue(static_cast<double>(edge.to_lane)));
    finish.set("ts", JsonValue(edge.to_time * kMicros));
    trace_events.push_back(std::move(finish));
  }

  JsonValue doc;
  doc.set("displayTimeUnit", JsonValue("ms"));
  doc.set("traceEvents", JsonValue(std::move(trace_events)));
  return doc;
}

std::string Tracer::to_chrome_json() const { return chrome_trace().dump(); }

}  // namespace multihit::obs
