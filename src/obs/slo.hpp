#pragma once
// Per-tenant serve SLOs on the simulated clock.
//
// The job service (src/serve) turned the reproduction into a multi-tenant
// system; this header is how that system gets *judged*: per tenant, per
// objective, the way a production fleet is. Three objective kinds, declared
// in a text grammar shaped like the monitor's parse_rules:
//
//   slo TENANT latency pP below SECONDS
//   slo TENANT admission above FRACTION
//   slo TENANT budget FRACTION window SECONDS [fast SECONDS]
//
// ('#' starts a comment, words split on blanks, TENANT may be '*' for
// "every tenant seen in the input".) `latency` bounds the exact pP latency
// percentile over completed jobs; `admission` lower-bounds the fraction of
// analyze requests not shed by admission control; `budget` is an error
// budget — the allowed fraction of *bad* requests (rejected, or completed
// above the tenant's tightest latency target) — tracked over rolling
// simulated-clock windows. The evaluator reports, per budget objective, the
// total budget consumed plus the worst *burn rate* (bad fraction over a
// trailing window, divided by the budget) over two windows: the slow window
// SECONDS and a fast window (default SECONDS/12) — the SRE multi-window
// pattern, on the simulated clock.
//
// The evaluator consumes a neutral SloInput (one row per resolved analyze
// request) that can be built two ways: in-process from a live ServeResult
// (serve::slo_input), or offline by parsing a multihit.serve.v1 report
// (slo_input_from_serve_json). Both paths carry bit-identical doubles (the
// JSON layer prints shortest round-trippable numbers), so the emitted
// `multihit.slo.v1` document is byte-identical between `multihit-serve
// --slo-out` and an `obstool slo` replay of the saved report —
// scripts/ci.sh pins it with cmp.
//
// The monitor-side companions (queue-saturation / tenant-starvation /
// burn-rate / cache-thrash detectors over serve trace lanes) live in
// monitor.{hpp,cpp}; they share SloObjective so one --slo-spec file drives
// both the offline verdict and the online alerts.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace multihit::obs {

/// Raised on malformed SLO specs and ill-shaped serve documents.
class SloError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class SloKind { kLatency, kAdmission, kBudget };

const char* slo_kind_name(SloKind kind) noexcept;

/// One declared objective (see the grammar above).
struct SloObjective {
  std::string tenant;       ///< tenant name, or "*" for every tenant
  SloKind kind = SloKind::kLatency;
  double percentile = 0.0;  ///< latency: the bounded percentile (e.g. 99)
  double target = 0.0;      ///< latency seconds / admission fraction / budget fraction
  double window = 0.0;      ///< budget: slow burn window (simulated s)
  double fast_window = 0.0; ///< budget: fast burn window (defaults to window/12)
};

/// Parses the SLO grammar; throws SloError naming the offending line.
std::vector<SloObjective> parse_slo(std::string_view text);

/// The tightest (minimum) latency target among objectives applying to
/// `tenant` (exact match or '*'); infinity when none — then only rejections
/// count as bad events.
double latency_target(const std::vector<SloObjective>& spec, std::string_view tenant);

// --- label-suffixed series names -------------------------------------------
// Trace counter series are keyed (name, lane) with no label concept, so the
// serve layer embeds tenant labels in the name itself: "serve.wait_age" with
// {tenant=gold} becomes "serve.wait_age{tenant=gold}" (keys sorted, comma
// separated). The monitor's rule engine and serve detectors split names back
// apart with split_series_labels.

using SeriesLabels = std::vector<std::pair<std::string, std::string>>;

/// Canonical labeled series name: base + "{k=v,...}" with keys sorted.
/// No-op (returns base) when labels is empty.
std::string series_with_labels(std::string_view base, SeriesLabels labels);

/// Splits a (possibly) label-suffixed series name. Strict: a name containing
/// '{' must be well-formed `base{key=value[,key=value]*}` with nonempty
/// base, keys, and values — anything else throws SloError.
std::pair<std::string, SeriesLabels> split_series_labels(std::string_view name);

/// The "tenant" label value of a labeled series name ("" when absent).
std::string series_tenant(std::string_view name);

// --- evaluation ------------------------------------------------------------

/// One resolved analyze request, as the evaluator sees it.
struct SloJob {
  std::string tenant;
  double arrival = 0.0;
  double finish = -1.0;   ///< completion time; < 0 for rejected requests
  double latency = 0.0;   ///< finish - arrival (completed only)
  bool rejected = false;
  bool cache_hit = false;
};

struct SloInput {
  std::vector<SloJob> jobs;  ///< in admission order
};

/// Builds an SloInput from a parsed multihit.serve.v1 document; throws
/// SloError on the wrong schema (naming expected and found) or ill-shaped
/// job records. Doubles round-trip exactly, so this input is bit-identical
/// to the in-process serve::slo_input of the run that wrote the report.
SloInput slo_input_from_serve_json(const JsonValue& doc);

/// One objective's verdict for one tenant.
struct SloObjectiveResult {
  SloObjective objective;      ///< tenant materialized ('*' expanded)
  double observed = 0.0;       ///< pP latency / admission rate / budget consumed
  double attainment = 1.0;     ///< fraction of events meeting the target
  double max_fast_burn = 0.0;  ///< budget only: worst fast-window burn rate
  double max_slow_burn = 0.0;  ///< budget only: worst slow-window burn rate
  bool violated = false;
};

struct SloTenantReport {
  std::string tenant;
  std::uint32_t completed = 0;
  std::uint32_t rejected = 0;
  std::uint32_t cache_hits = 0;
  std::uint32_t bad = 0;  ///< rejected or above the tenant's latency target
  std::vector<SloObjectiveResult> objectives;  ///< in spec declaration order
};

struct SloReport {
  std::vector<SloObjective> spec;          ///< echo, in declaration order
  std::vector<SloTenantReport> tenants;    ///< sorted by tenant name
  std::uint32_t objectives = 0;            ///< evaluated (tenant, objective) pairs
  std::uint32_t violated = 0;
  double worst_burn = 0.0;                 ///< max burn rate over all budget results
  double worst_p99_attainment = 1.0;       ///< min attainment among p99 latency objectives
};

/// Evaluates `spec` over `input`. Pure and deterministic: same input + spec
/// => identical report. '*' objectives expand over every tenant seen in the
/// input (plus explicitly named tenants), in sorted order.
SloReport evaluate_slo(const SloInput& input, const std::vector<SloObjective>& spec);

/// Renders the multihit.slo.v1 JSON document (stable field order; two
/// identical evaluations produce byte-identical documents).
JsonValue slo_report_json(const SloReport& report);

/// Human-readable rendering; `summary_only` stops after the totals.
std::string slo_text(const SloReport& report, bool summary_only = false);

}  // namespace multihit::obs
