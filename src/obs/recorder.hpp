#pragma once
// The observability context threaded through a run.
//
// One Recorder bundles the metrics registry and the span tracer for a single
// run. Layers accept a nullable `Recorder*`: a null pointer means
// observability is off and instrumented code must behave bit-identically to
// uninstrumented code (the differential test in tests/test_obs.cpp enforces
// it) — instrumentation reads simulated clocks, it never advances them.

#include <fstream>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace multihit::obs {

struct Recorder {
  MetricsRegistry metrics;
  Tracer trace;
  /// Kernel-launch profiler; collects nothing until profile.enable() — the
  /// per-launch records cost more than counters, so they are opt-in even
  /// when a recorder is attached.
  Profiler profile;

  /// Writes the metrics snapshot JSON; returns false on I/O failure.
  bool write_metrics(std::string_view path) const {
    std::ofstream out{std::string(path)};
    if (!out) return false;
    out << metrics.to_json() << '\n';
    return static_cast<bool>(out);
  }

  /// Writes the Chrome trace-event JSON; returns false on I/O failure.
  bool write_trace(std::string_view path) const {
    std::ofstream out{std::string(path)};
    if (!out) return false;
    out << trace.to_chrome_json() << '\n';
    return static_cast<bool>(out);
  }

  /// Writes the multihit.profile.v1 JSON; returns false on I/O failure.
  bool write_profile(std::string_view path) const {
    std::ofstream out{std::string(path)};
    if (!out) return false;
    out << profile_report(profile).dump() << '\n';
    return static_cast<bool>(out);
  }
};

}  // namespace multihit::obs
