#include "obs/analyze.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace multihit::obs {

namespace {

constexpr double kMicros = 1e6;

/// One span with its nesting depth on its lane (0 = top-level).
struct DepthSpan {
  const TraceEvent* event;
  std::size_t index;  ///< insertion index in Tracer::events()
  std::uint32_t depth = 0;
  std::uint32_t parent = 0;  ///< position in the lane vector; self when root
};

/// Non-instant spans of one lane, chronological, with containment depths.
/// Ordering is (begin asc, duration desc, insertion index desc): the
/// clock-delta instrumentation pattern appends children during a phase and
/// the parent afterwards, so for fully tied spans (a GPU kernel exactly as
/// long as its compute phase) the later-appended span is the outer one.
using LaneSpans = std::map<std::uint32_t, std::vector<DepthSpan>>;

LaneSpans build_lane_spans(const Tracer& tracer) {
  LaneSpans lanes;
  const std::vector<TraceEvent>& events = tracer.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].instant) continue;
    lanes[events[i].lane].push_back(DepthSpan{&events[i], i});
  }
  for (auto& [lane, spans] : lanes) {
    std::sort(spans.begin(), spans.end(), [](const DepthSpan& a, const DepthSpan& b) {
      if (a.event->begin != b.event->begin) return a.event->begin < b.event->begin;
      if (a.event->duration() != b.event->duration())
        return a.event->duration() > b.event->duration();
      return a.index > b.index;
    });
    // Stack sweep: begin-sorted, so a span nests iff it ends within the top
    // of the open-span stack. A span whose would-be parent shares its name
    // is a concurrent sibling, not a child — a node's six GPU kernels all
    // start at the rank clock, and interval containment alone would chain
    // them into a bogus six-deep stack.
    std::vector<std::uint32_t> stack;
    for (std::uint32_t i = 0; i < spans.size(); ++i) {
      while (!stack.empty() && spans[stack.back()].event->end < spans[i].event->end) {
        stack.pop_back();
      }
      if (!stack.empty() && spans[stack.back()].event->name == spans[i].event->name) {
        spans[i].depth = spans[stack.back()].depth;
        spans[i].parent = spans[stack.back()].parent;
        continue;  // sibling leaf: later spans nest into the first sibling
      }
      spans[i].depth = static_cast<std::uint32_t>(stack.size());
      spans[i].parent = stack.empty() ? i : stack.back();
      stack.push_back(i);
    }
  }
  return lanes;
}

bool is_rank_lane(std::uint32_t lane) { return lane < kEngineLane; }

/// Appends the [a, b] slice of `lane`'s timeline to `out` in reverse
/// chronological order: pieces covered by top-level spans get the span's
/// name, gaps get "wait".
void attribute_backward(const std::vector<DepthSpan>& spans, std::uint32_t lane, double a,
                        double b, std::vector<CriticalSegment>& out) {
  if (!(b > a)) return;
  std::vector<CriticalSegment> forward;
  double cursor = a;
  for (const DepthSpan& ds : spans) {
    if (ds.depth != 0) continue;
    const TraceEvent& s = *ds.event;
    if (s.end <= cursor) continue;
    if (s.begin >= b) break;
    const double lo = std::max(cursor, s.begin);
    const double hi = std::min(b, s.end);
    if (lo > cursor) forward.push_back({lane, cursor, lo, "wait"});
    if (hi > lo) forward.push_back({lane, lo, hi, s.name});
    cursor = std::max(cursor, hi);
    if (cursor >= b) break;
  }
  if (cursor < b) forward.push_back({lane, cursor, b, "wait"});
  for (auto it = forward.rbegin(); it != forward.rend(); ++it) out.push_back(*it);
}

}  // namespace

TraceAnalysis analyze_trace(const Tracer& tracer) {
  TraceAnalysis analysis;
  const LaneSpans lanes = build_lane_spans(tracer);

  // ---- makespan and the per-phase / per-rank breakdown.
  std::vector<std::uint32_t> rank_lanes;
  for (const auto& [lane, spans] : lanes) {
    if (is_rank_lane(lane) && !spans.empty()) rank_lanes.push_back(lane);
  }
  analysis.rank_lanes = static_cast<std::uint32_t>(rank_lanes.size());

  std::uint32_t makespan_lane = 0;
  for (const std::uint32_t lane : rank_lanes) {
    for (const DepthSpan& ds : lanes.at(lane)) {
      if (ds.event->end > analysis.makespan) {
        analysis.makespan = ds.event->end;
        makespan_lane = lane;
      }
    }
  }

  // phase -> (category, per-lane seconds keyed by rank lane).
  std::map<std::string, std::pair<std::string, std::map<std::uint32_t, double>>> by_phase;
  for (const std::uint32_t lane : rank_lanes) {
    for (const DepthSpan& ds : lanes.at(lane)) {
      if (ds.depth != 0) continue;
      auto& entry = by_phase[ds.event->name];
      if (entry.first.empty()) entry.first = ds.event->category;
      entry.second[lane] += ds.event->duration();
    }
  }
  for (const auto& [phase, entry] : by_phase) {
    const auto& [category, per_lane] = entry;
    PhaseStat stat;
    stat.phase = phase;
    stat.category = category;
    stat.lanes = static_cast<std::uint32_t>(per_lane.size());
    // Mean and stddev are over *all* rank lanes in the trace: a lane that
    // never entered the phase contributes zero — that absence is imbalance.
    for (const auto& [lane, seconds] : per_lane) {
      stat.total_seconds += seconds;
      if (seconds > stat.max_seconds) {
        stat.max_seconds = seconds;
        stat.straggler_lane = lane;
      }
    }
    const double n = static_cast<double>(rank_lanes.size());
    stat.mean_seconds = n > 0 ? stat.total_seconds / n : 0.0;
    if (n > 1) {
      double ss = 0.0;
      for (const std::uint32_t lane : rank_lanes) {
        const auto it = per_lane.find(lane);
        const double v = it == per_lane.end() ? 0.0 : it->second;
        ss += (v - stat.mean_seconds) * (v - stat.mean_seconds);
      }
      stat.stddev_seconds = std::sqrt(ss / (n - 1.0));
    }
    stat.max_over_mean = stat.mean_seconds > 0.0 ? stat.max_seconds / stat.mean_seconds : 0.0;
    analysis.busy_seconds += stat.total_seconds;
    if (stat.category == "comm") analysis.comm_seconds += stat.total_seconds;
    analysis.phases.push_back(std::move(stat));
  }
  analysis.comm_fraction =
      analysis.busy_seconds > 0.0 ? analysis.comm_seconds / analysis.busy_seconds : 0.0;

  // ---- critical path: backward walk over binding flow edges.
  // Per destination lane, binding edges sorted by arrival time.
  std::map<std::uint32_t, std::vector<const FlowEdge*>> incoming;
  for (const FlowEdge& edge : tracer.flows()) {
    if (edge.binding) incoming[edge.to_lane].push_back(&edge);
  }
  for (auto& [lane, edges] : incoming) {
    std::stable_sort(edges.begin(), edges.end(), [](const FlowEdge* a, const FlowEdge* b) {
      return a->to_time < b->to_time;
    });
  }

  if (analysis.makespan > 0.0) {
    std::uint32_t cur_lane = makespan_lane;
    double cur_time = analysis.makespan;
    std::vector<CriticalSegment> backward;
    while (cur_time > 0.0) {
      const FlowEdge* next = nullptr;
      const auto it = incoming.find(cur_lane);
      if (it != incoming.end()) {
        // Latest binding arrival at or before cur_time whose departure is
        // strictly earlier — strict progress guarantees termination.
        const auto& edges = it->second;
        auto upper = std::upper_bound(edges.begin(), edges.end(), cur_time,
                                      [](double t, const FlowEdge* e) { return t < e->to_time; });
        while (upper != edges.begin()) {
          --upper;
          if ((*upper)->from_time < cur_time) {
            next = *upper;
            break;
          }
        }
      }
      const double seg_begin = next ? next->to_time : 0.0;
      const auto lane_it = lanes.find(cur_lane);
      static const std::vector<DepthSpan> kNoSpans;
      attribute_backward(lane_it == lanes.end() ? kNoSpans : lane_it->second, cur_lane,
                         seg_begin, cur_time, backward);
      if (!next) break;
      // The wire time of the jump edge [departure, arrival] is on the path
      // too — attributed as "transfer" so the tiles still cover [0, makespan]
      // and the comm wire share is visible in the breakdown.
      if (next->to_time > next->from_time) {
        backward.push_back({next->to_lane, next->from_time, next->to_time, "transfer"});
      }
      cur_lane = next->from_lane;
      cur_time = next->from_time;
    }
    std::reverse(backward.begin(), backward.end());
    // Merge adjacent pieces with the same lane and phase so reports stay
    // compact (a lane's consecutive spans of one phase collapse).
    for (CriticalSegment& seg : backward) {
      if (!analysis.critical_path.empty()) {
        CriticalSegment& last = analysis.critical_path.back();
        if (last.lane == seg.lane && last.phase == seg.phase && last.end == seg.begin) {
          last.end = seg.end;
          continue;
        }
      }
      analysis.critical_path.push_back(std::move(seg));
    }
  }
  std::map<std::string, double> critical_phase;
  for (const CriticalSegment& seg : analysis.critical_path) {
    analysis.critical_total += seg.end - seg.begin;
    critical_phase[seg.phase] += seg.end - seg.begin;
  }
  analysis.critical_by_phase.assign(critical_phase.begin(), critical_phase.end());

  // ---- greedy iteration windows from the engine lane.
  const auto engine_it = lanes.find(kEngineLane);
  if (engine_it != lanes.end()) {
    for (const DepthSpan& ds : engine_it->second) {
      if (ds.event->name != "greedy_iteration") continue;
      IterationWindow window;
      window.index = static_cast<std::uint32_t>(analysis.iterations.size());
      for (const auto& [k, v] : ds.event->args) {
        if (k != "iteration") continue;
        try {
          window.index = static_cast<std::uint32_t>(std::stoul(v));
        } catch (const std::exception&) {
          // keep the positional index for unparseable annotations
        }
      }
      window.begin = ds.event->begin;
      window.end = ds.event->end;
      analysis.iterations.push_back(window);
    }
  }
  return analysis;
}

namespace {

std::string require_string(const JsonValue& event, const char* key) {
  const JsonValue* value = event.find(key);
  if (!value || !value->is_string()) {
    throw AnalysisError(std::string("trace event missing string field '") + key + "'");
  }
  return value->as_string();
}

double require_number(const JsonValue& event, const char* key) {
  const JsonValue* value = event.find(key);
  if (!value || !value->is_number()) {
    throw AnalysisError(std::string("trace event missing numeric field '") + key + "'");
  }
  return value->as_number();
}

SpanArgs parse_args(const JsonValue& event) {
  SpanArgs args;
  const JsonValue* object = event.find("args");
  if (!object) return args;
  if (!object->is_object()) throw AnalysisError("trace event args is not an object");
  for (const auto& [key, value] : object->as_object()) {
    if (!value.is_string()) throw AnalysisError("trace event arg '" + key + "' is not a string");
    args.emplace_back(key, value.as_string());
  }
  return args;
}

}  // namespace

Tracer tracer_from_chrome(const JsonValue& doc) {
  if (!doc.is_object()) throw AnalysisError("trace document is not a JSON object");
  const JsonValue* events = doc.find("traceEvents");
  if (!events || !events->is_array()) {
    throw AnalysisError("trace document has no traceEvents array");
  }

  Tracer tracer;
  struct FlowStart {
    std::string name, category;
    std::uint32_t lane;
    double time;
    bool binding;
    SpanArgs args;
  };
  std::map<std::int64_t, FlowStart> pending;

  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& event = events->at(i);
    if (!event.is_object()) throw AnalysisError("trace event is not a JSON object");
    const std::string ph = require_string(event, "ph");
    if (ph == "M") {
      if (require_string(event, "name") == "thread_name") {
        const JsonValue* args = event.find("args");
        const JsonValue* name = args ? args->find("name") : nullptr;
        if (!name || !name->is_string()) throw AnalysisError("thread_name metadata without a name");
        tracer.set_lane_name(static_cast<std::uint32_t>(require_number(event, "tid")),
                             name->as_string());
      }
      continue;
    }
    const std::uint32_t lane = static_cast<std::uint32_t>(require_number(event, "tid"));
    const double ts = require_number(event, "ts") / kMicros;
    if (ph == "X") {
      const double dur = require_number(event, "dur") / kMicros;
      tracer.complete(lane, require_string(event, "name"), require_string(event, "cat"), ts,
                      ts + dur, parse_args(event));
    } else if (ph == "i") {
      tracer.instant(lane, require_string(event, "name"), require_string(event, "cat"), ts,
                     parse_args(event));
    } else if (ph == "C") {
      const JsonValue* args = event.find("args");
      const JsonValue* value = args ? args->find("value") : nullptr;
      if (!value || !value->is_number()) {
        throw AnalysisError("counter event without a numeric args.value");
      }
      tracer.counter(lane, require_string(event, "name"), ts, value->as_number());
    } else if (ph == "s") {
      const auto id = static_cast<std::int64_t>(require_number(event, "id"));
      SpanArgs args = parse_args(event);
      bool binding = false;
      for (auto it = args.begin(); it != args.end(); ++it) {
        if (it->first == "binding") {
          binding = it->second == "true";
          args.erase(it);
          break;
        }
      }
      if (!pending
               .emplace(id, FlowStart{require_string(event, "name"),
                                      require_string(event, "cat"), lane, ts, binding,
                                      std::move(args)})
               .second) {
        throw AnalysisError("duplicate flow start id " + std::to_string(id));
      }
    } else if (ph == "f") {
      const auto id = static_cast<std::int64_t>(require_number(event, "id"));
      const auto it = pending.find(id);
      if (it == pending.end()) {
        throw AnalysisError("flow finish without start, id " + std::to_string(id));
      }
      FlowStart start = std::move(it->second);
      pending.erase(it);
      tracer.flow(start.lane, start.time, lane, ts, start.name, start.category, start.binding,
                  std::move(start.args));
    } else {
      throw AnalysisError("unsupported trace event phase '" + ph + "'");
    }
  }
  if (!pending.empty()) {
    throw AnalysisError(std::to_string(pending.size()) + " flow start(s) without a finish");
  }
  return tracer;
}

std::string folded_stacks(const Tracer& tracer) {
  const LaneSpans lanes = build_lane_spans(tracer);
  std::map<std::uint32_t, std::string> names;
  for (const auto& [lane, name] : tracer.lane_names()) names[lane] = name;

  // Self time per distinct stack, in integer microseconds for stable text.
  std::map<std::string, std::int64_t> folded;
  std::vector<std::string> stacks;  // reused per lane: stack string per span
  for (const auto& [lane, spans] : lanes) {
    const auto name_it = names.find(lane);
    const std::string lane_name =
        name_it != names.end() ? name_it->second : "lane " + std::to_string(lane);
    stacks.assign(spans.size(), {});
    std::vector<double> child_time(spans.size(), 0.0);
    for (std::uint32_t i = 0; i < spans.size(); ++i) {
      stacks[i] = spans[i].depth == 0 ? lane_name + ";" + spans[i].event->name
                                      : stacks[spans[i].parent] + ";" + spans[i].event->name;
      if (spans[i].depth > 0) child_time[spans[i].parent] += spans[i].event->duration();
    }
    for (std::uint32_t i = 0; i < spans.size(); ++i) {
      const double self = spans[i].event->duration() - child_time[i];
      const auto micros = static_cast<std::int64_t>(std::llround(std::max(self, 0.0) * kMicros));
      if (micros > 0) folded[stacks[i]] += micros;
    }
  }

  std::string out;
  for (const auto& [stack, micros] : folded) {
    out += stack;
    out += ' ';
    out += std::to_string(micros);
    out += '\n';
  }
  return out;
}

}  // namespace multihit::obs
