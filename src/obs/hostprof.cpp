// Host-sweep profiler: collection, the multihit.hostprof.v1 renderer, its
// exact inverse, the deterministic projection, consistency crosschecks, and
// the folded flamegraph export. Rendering is a pure function of the stored
// HostProfile fields so parse -> re-render is byte-identical.

#include "obs/hostprof.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "obs/schema.hpp"

namespace multihit::obs {

namespace {

std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, value);
  return buf;
}

// The fixed op order every calls table uses — report sections, text output,
// and the backend attribution all iterate this one list.
struct OpField {
  const char* name;
  std::uint64_t HostBitopsCalls::* member;
};
constexpr OpField kOpFields[] = {
    {"popcount_row", &HostBitopsCalls::popcount_row},
    {"and2", &HostBitopsCalls::and2},
    {"and3", &HostBitopsCalls::and3},
    {"and4", &HostBitopsCalls::and4},
    {"and_rows", &HostBitopsCalls::and_rows},
    {"and_rows_inplace", &HostBitopsCalls::and_rows_inplace},
    {"andnot2", &HostBitopsCalls::andnot2},
    {"andnot_rows", &HostBitopsCalls::andnot_rows},
};

JsonValue calls_json(const HostBitopsCalls& calls) {
  JsonValue out = JsonValue::object();
  for (const OpField& op : kOpFields) out.set(op.name, JsonValue(calls.*op.member));
  out.set("total", JsonValue(calls.total()));
  return out;
}

// ---------------------------------------------------------------- extraction
// Strict typed member access for hostprof_from_json: every miss names the
// exact path so "you handed me a truncated file" is a one-line diagnosis.

const JsonValue& member(const JsonValue& obj, const std::string& where, const char* key) {
  const JsonValue* value = obj.is_object() ? obj.find(key) : nullptr;
  if (!value) throw HostprofError("hostprof document: missing " + where + "." + key);
  return *value;
}

double get_number(const JsonValue& obj, const std::string& where, const char* key) {
  const JsonValue& value = member(obj, where, key);
  if (!value.is_number()) throw HostprofError("hostprof document: " + where + "." + key + " is not a number");
  return value.as_number();
}

std::uint64_t get_u64(const JsonValue& obj, const std::string& where, const char* key) {
  const double number = get_number(obj, where, key);
  if (number < 0 || number != std::floor(number)) {
    throw HostprofError("hostprof document: " + where + "." + key + " is not a non-negative integer");
  }
  return static_cast<std::uint64_t>(number);
}

std::string get_string(const JsonValue& obj, const std::string& where, const char* key) {
  const JsonValue& value = member(obj, where, key);
  if (!value.is_string()) throw HostprofError("hostprof document: " + where + "." + key + " is not a string");
  return value.as_string();
}

bool get_bool(const JsonValue& obj, const std::string& where, const char* key) {
  const JsonValue& value = member(obj, where, key);
  if (!value.is_bool()) throw HostprofError("hostprof document: " + where + "." + key + " is not a boolean");
  return value.as_bool();
}

const JsonValue& get_array(const JsonValue& obj, const std::string& where, const char* key) {
  const JsonValue& value = member(obj, where, key);
  if (!value.is_array()) throw HostprofError("hostprof document: " + where + "." + key + " is not an array");
  return value;
}

const JsonValue& get_object(const JsonValue& obj, const std::string& where, const char* key) {
  const JsonValue& value = member(obj, where, key);
  if (!value.is_object()) throw HostprofError("hostprof document: " + where + "." + key + " is not an object");
  return value;
}

HostBitopsCalls calls_from_json(const JsonValue& obj, const std::string& where) {
  HostBitopsCalls calls;
  for (const OpField& op : kOpFields) calls.*op.member = get_u64(obj, where, op.name);
  return calls;
}

}  // namespace

std::size_t claim_bucket(double seconds) noexcept {
  for (std::size_t i = 0; i < kClaimBucketBounds.size(); ++i) {
    if (seconds <= kClaimBucketBounds[i]) return i;
  }
  return kClaimBuckets - 1;
}

// ---------------------------------------------------------------- collection

void HostProfiler::begin_sweep(const HostSweepSetup& setup) {
  if (in_sweep_) throw std::logic_error("HostProfiler: begin_sweep with a sweep already open");
  in_sweep_ = true;
  current_ = HostSweepStat{};
  current_.index = static_cast<std::uint32_t>(profile_.sweeps.size());
  current_.workers = setup.workers;
  current_.chunk_size = setup.chunk_size;
  current_.chunk_count = setup.chunk_count;
  current_.lambda_end = setup.lambda_end;

  if (profile_.sweeps.empty() && profile_.workers == 0) {
    profile_.hits = setup.hits;
    profile_.scheme = setup.scheme;
    profile_.backend = setup.backend;
    profile_.bitops_counted = setup.bitops_counted;
    profile_.chunk_size = setup.chunk_size;
    profile_.lambda_end = setup.lambda_end;
  }
  if (setup.workers > profile_.workers) profile_.workers = setup.workers;
  while (profile_.worker_stats.size() < setup.workers) {
    HostWorkerStat stat;
    stat.worker = static_cast<std::uint32_t>(profile_.worker_stats.size());
    profile_.worker_stats.push_back(stat);
  }
}

void HostProfiler::record_worker(std::uint32_t worker, const HostWorkerSample& sample) {
  if (!in_sweep_) throw std::logic_error("HostProfiler: record_worker outside a sweep");
  if (worker >= profile_.worker_stats.size()) {
    throw std::logic_error("HostProfiler: record_worker beyond the sweep's worker count");
  }
  HostWorkerStat& stat = profile_.worker_stats[worker];
  stat.sweeps += 1;
  stat.chunks += sample.chunks;
  stat.candidates += sample.candidates;
  stat.combinations += sample.combinations;
  stat.empty_polls += sample.empty_polls;
  stat.calls += sample.calls;
  stat.claim_seconds += sample.claim_seconds;
  stat.eval_seconds += sample.eval_seconds;
  stat.tail_idle_seconds += sample.tail_idle_seconds;
  for (std::size_t i = 0; i < kClaimBuckets; ++i) {
    stat.claim_histogram[i] += sample.claim_histogram[i];
  }
  stat.arena_peak_words = std::max(stat.arena_peak_words, sample.arena_peak_words);
  stat.arena_capacity_words = std::max(stat.arena_capacity_words, sample.arena_capacity_words);
  stat.arena_blocks += sample.arena_blocks;

  current_.chunks += sample.chunks;
  current_.candidates += sample.candidates;
  current_.combinations += sample.combinations;

  profile_.total_chunks += sample.chunks;
  profile_.total_claims += sample.chunks;  // every successful poll is one chunk
  profile_.total_empty_polls += sample.empty_polls;
  profile_.total_candidates += sample.candidates;
  profile_.total_combinations += sample.combinations;
  profile_.total_calls += sample.calls;
  profile_.arena_peak_words_max = std::max(profile_.arena_peak_words_max, sample.arena_peak_words);
  profile_.eval_seconds += sample.eval_seconds;
  profile_.claim_seconds += sample.claim_seconds;
  profile_.tail_idle_seconds += sample.tail_idle_seconds;
}

void HostProfiler::end_sweep(const HostSweepClose& close) {
  if (!in_sweep_) throw std::logic_error("HostProfiler: end_sweep without begin_sweep");
  in_sweep_ = false;
  current_.wall_seconds = close.wall_seconds;
  current_.merge_seconds = close.merge_seconds;
  current_.polls = close.polls;
  profile_.wall_seconds += close.wall_seconds;
  profile_.merge_seconds += close.merge_seconds;
  profile_.sweeps.push_back(current_);
}

// ----------------------------------------------------------------- rendering

PhaseStat hostprof_imbalance(const HostProfile& profile, const std::string& phase) {
  PhaseStat stat;
  stat.phase = phase;
  if (phase == "evaluate") {
    stat.category = "compute";
  } else if (phase == "claim") {
    stat.category = "queue";
  } else if (phase == "tail_idle") {
    stat.category = "idle";
  } else {
    throw std::logic_error("hostprof_imbalance: unknown phase " + phase);
  }

  const auto value_of = [&](const HostWorkerStat& w) {
    if (phase == "evaluate") return w.eval_seconds;
    if (phase == "claim") return w.claim_seconds;
    return w.tail_idle_seconds;
  };

  stat.lanes = static_cast<std::uint32_t>(profile.worker_stats.size());
  if (stat.lanes == 0) return stat;
  for (const HostWorkerStat& worker : profile.worker_stats) {
    const double value = value_of(worker);
    stat.total_seconds += value;
    if (value > stat.max_seconds) {
      stat.max_seconds = value;
      stat.straggler_lane = worker.worker;
    }
  }
  stat.mean_seconds = stat.total_seconds / stat.lanes;
  double variance = 0.0;
  for (const HostWorkerStat& worker : profile.worker_stats) {
    const double delta = value_of(worker) - stat.mean_seconds;
    variance += delta * delta;
  }
  stat.stddev_seconds = std::sqrt(variance / stat.lanes);
  stat.max_over_mean = stat.mean_seconds > 0.0 ? stat.max_seconds / stat.mean_seconds : 0.0;
  return stat;
}

namespace {

JsonValue workload_json(const HostProfile& profile) {
  JsonValue workload = JsonValue::object();
  workload.set("hits", JsonValue(static_cast<std::uint64_t>(profile.hits)));
  workload.set("scheme", JsonValue(profile.scheme));
  workload.set("lambda_end", JsonValue(profile.lambda_end));
  workload.set("chunk_size", JsonValue(profile.chunk_size));
  workload.set("workers", JsonValue(static_cast<std::uint64_t>(profile.workers)));
  workload.set("sweeps", JsonValue(static_cast<std::uint64_t>(profile.sweeps.size())));
  workload.set("bitops_counted", JsonValue(profile.bitops_counted));
  return workload;
}

JsonValue totals_json(const HostProfile& profile) {
  JsonValue totals = JsonValue::object();
  totals.set("chunks", JsonValue(profile.total_chunks));
  totals.set("claims", JsonValue(profile.total_claims));
  totals.set("empty_polls", JsonValue(profile.total_empty_polls));
  totals.set("candidates", JsonValue(profile.total_candidates));
  totals.set("combinations", JsonValue(profile.total_combinations));
  totals.set("arena_peak_words_max", JsonValue(profile.arena_peak_words_max));
  totals.set("bitops_calls", calls_json(profile.total_calls));
  return totals;
}

void set_phase_json(JsonValue& array, const PhaseStat& stat) {
  // Mirrors the phase-entry shape analysis_report emits (report.cpp) so
  // downstream consumers read one imbalance format.
  JsonValue entry = JsonValue::object();
  entry.set("phase", JsonValue(stat.phase));
  entry.set("category", JsonValue(stat.category));
  entry.set("total_seconds", JsonValue(stat.total_seconds));
  entry.set("mean_seconds", JsonValue(stat.mean_seconds));
  entry.set("max_seconds", JsonValue(stat.max_seconds));
  entry.set("stddev_seconds", JsonValue(stat.stddev_seconds));
  entry.set("max_over_mean", JsonValue(stat.max_over_mean));
  entry.set("lanes", JsonValue(static_cast<double>(stat.lanes)));
  entry.set("straggler_lane", JsonValue(static_cast<double>(stat.straggler_lane)));
  array.push_back(std::move(entry));
}

}  // namespace

JsonValue hostprof_report(const HostProfile& profile) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", JsonValue(kHostprofSchema));
  doc.set("workload", workload_json(profile));
  doc.set("totals", totals_json(profile));

  // Backend attribution: which dispatched ops carried the sweep. The name is
  // wall-clock-adjacent context (it varies run to run with MULTIHIT_BITOPS),
  // so it lives outside the deterministic projection; the call *counts* it
  // attributes are dispatch-level and identical across backends.
  JsonValue backend = JsonValue::object();
  backend.set("name", JsonValue(profile.backend));
  const std::uint64_t total_calls = profile.total_calls.total();
  backend.set("calls_per_combination",
              JsonValue(profile.total_combinations > 0
                            ? static_cast<double>(total_calls) /
                                  static_cast<double>(profile.total_combinations)
                            : 0.0));
  JsonValue attribution = JsonValue::array();
  for (const OpField& op : kOpFields) {
    const std::uint64_t calls = profile.total_calls.*op.member;
    JsonValue entry = JsonValue::object();
    entry.set("op", JsonValue(op.name));
    entry.set("calls", JsonValue(calls));
    entry.set("fraction", JsonValue(total_calls > 0 ? static_cast<double>(calls) /
                                                          static_cast<double>(total_calls)
                                                    : 0.0));
    attribution.push_back(std::move(entry));
  }
  backend.set("attribution", std::move(attribution));
  doc.set("backend", std::move(backend));

  JsonValue wallclock = JsonValue::object();
  wallclock.set("wall_seconds", JsonValue(profile.wall_seconds));
  wallclock.set("eval_seconds", JsonValue(profile.eval_seconds));
  wallclock.set("claim_seconds", JsonValue(profile.claim_seconds));
  wallclock.set("merge_seconds", JsonValue(profile.merge_seconds));
  wallclock.set("tail_idle_seconds", JsonValue(profile.tail_idle_seconds));
  const double worker_seconds =
      profile.eval_seconds + profile.claim_seconds + profile.tail_idle_seconds;
  wallclock.set("busy_fraction",
                JsonValue(worker_seconds > 0.0 ? profile.eval_seconds / worker_seconds : 0.0));
  wallclock.set("combos_per_sec",
                JsonValue(profile.wall_seconds > 0.0
                              ? static_cast<double>(profile.total_combinations) /
                                    profile.wall_seconds
                              : 0.0));
  doc.set("wallclock", std::move(wallclock));

  JsonValue imbalance = JsonValue::array();
  set_phase_json(imbalance, hostprof_imbalance(profile, "evaluate"));
  set_phase_json(imbalance, hostprof_imbalance(profile, "claim"));
  set_phase_json(imbalance, hostprof_imbalance(profile, "tail_idle"));
  doc.set("imbalance", std::move(imbalance));

  JsonValue latency = JsonValue::object();
  JsonValue bounds = JsonValue::array();
  for (const double bound : kClaimBucketBounds) bounds.push_back(JsonValue(bound));
  latency.set("bounds_seconds", std::move(bounds));
  JsonValue counts = JsonValue::array();
  for (std::size_t i = 0; i < kClaimBuckets; ++i) {
    std::uint64_t count = 0;
    for (const HostWorkerStat& worker : profile.worker_stats) count += worker.claim_histogram[i];
    counts.push_back(JsonValue(count));
  }
  latency.set("counts", std::move(counts));
  doc.set("claim_latency", std::move(latency));

  JsonValue workers = JsonValue::array();
  for (const HostWorkerStat& worker : profile.worker_stats) {
    JsonValue entry = JsonValue::object();
    entry.set("worker", JsonValue(static_cast<std::uint64_t>(worker.worker)));
    entry.set("sweeps", JsonValue(worker.sweeps));
    entry.set("chunks", JsonValue(worker.chunks));
    entry.set("candidates", JsonValue(worker.candidates));
    entry.set("combinations", JsonValue(worker.combinations));
    entry.set("empty_polls", JsonValue(worker.empty_polls));
    entry.set("claim_seconds", JsonValue(worker.claim_seconds));
    entry.set("eval_seconds", JsonValue(worker.eval_seconds));
    entry.set("tail_idle_seconds", JsonValue(worker.tail_idle_seconds));
    JsonValue histogram = JsonValue::array();
    for (const std::uint64_t count : worker.claim_histogram) histogram.push_back(JsonValue(count));
    entry.set("claim_histogram", std::move(histogram));
    entry.set("arena_peak_words", JsonValue(worker.arena_peak_words));
    entry.set("arena_capacity_words", JsonValue(worker.arena_capacity_words));
    entry.set("arena_blocks", JsonValue(worker.arena_blocks));
    entry.set("bitops_calls", calls_json(worker.calls));
    workers.push_back(std::move(entry));
  }
  doc.set("workers", std::move(workers));

  JsonValue sweeps = JsonValue::array();
  for (const HostSweepStat& sweep : profile.sweeps) {
    JsonValue entry = JsonValue::object();
    entry.set("index", JsonValue(static_cast<std::uint64_t>(sweep.index)));
    entry.set("workers", JsonValue(static_cast<std::uint64_t>(sweep.workers)));
    entry.set("chunk_size", JsonValue(sweep.chunk_size));
    entry.set("chunk_count", JsonValue(sweep.chunk_count));
    entry.set("lambda_end", JsonValue(sweep.lambda_end));
    entry.set("chunks", JsonValue(sweep.chunks));
    entry.set("candidates", JsonValue(sweep.candidates));
    entry.set("combinations", JsonValue(sweep.combinations));
    entry.set("polls", JsonValue(sweep.polls));
    entry.set("wall_seconds", JsonValue(sweep.wall_seconds));
    entry.set("merge_seconds", JsonValue(sweep.merge_seconds));
    sweeps.push_back(std::move(entry));
  }
  doc.set("sweeps", std::move(sweeps));
  return doc;
}

JsonValue hostprof_deterministic(const HostProfile& profile) {
  // Everything here is structural or counted: identical configurations
  // produce byte-identical projections regardless of wall clock, bitops
  // backend, or how chunks happened to land on workers.
  JsonValue doc = JsonValue::object();
  doc.set("schema", JsonValue(kHostprofSchema));
  doc.set("deterministic", JsonValue(true));
  doc.set("workload", workload_json(profile));
  doc.set("totals", totals_json(profile));
  return doc;
}

HostProfile hostprof_from_json(const JsonValue& doc) {
  require_schema<HostprofError>(doc, kHostprofSchema, "hostprof document");
  HostProfile profile;

  const JsonValue& workload = get_object(doc, "$", "workload");
  profile.hits = static_cast<std::uint32_t>(get_u64(workload, "workload", "hits"));
  profile.scheme = get_string(workload, "workload", "scheme");
  profile.lambda_end = get_u64(workload, "workload", "lambda_end");
  profile.chunk_size = get_u64(workload, "workload", "chunk_size");
  profile.workers = static_cast<std::uint32_t>(get_u64(workload, "workload", "workers"));
  profile.bitops_counted = get_bool(workload, "workload", "bitops_counted");
  const std::uint64_t sweep_count = get_u64(workload, "workload", "sweeps");

  const JsonValue& totals = get_object(doc, "$", "totals");
  profile.total_chunks = get_u64(totals, "totals", "chunks");
  profile.total_claims = get_u64(totals, "totals", "claims");
  profile.total_empty_polls = get_u64(totals, "totals", "empty_polls");
  profile.total_candidates = get_u64(totals, "totals", "candidates");
  profile.total_combinations = get_u64(totals, "totals", "combinations");
  profile.arena_peak_words_max = get_u64(totals, "totals", "arena_peak_words_max");
  profile.total_calls = calls_from_json(get_object(totals, "totals", "bitops_calls"),
                                        "totals.bitops_calls");

  profile.backend = get_string(get_object(doc, "$", "backend"), "backend", "name");

  const JsonValue& wallclock = get_object(doc, "$", "wallclock");
  profile.wall_seconds = get_number(wallclock, "wallclock", "wall_seconds");
  profile.eval_seconds = get_number(wallclock, "wallclock", "eval_seconds");
  profile.claim_seconds = get_number(wallclock, "wallclock", "claim_seconds");
  profile.merge_seconds = get_number(wallclock, "wallclock", "merge_seconds");
  profile.tail_idle_seconds = get_number(wallclock, "wallclock", "tail_idle_seconds");

  const JsonValue& workers = get_array(doc, "$", "workers");
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const JsonValue& entry = workers.at(i);
    const std::string where = "workers[" + std::to_string(i) + "]";
    HostWorkerStat stat;
    stat.worker = static_cast<std::uint32_t>(get_u64(entry, where, "worker"));
    stat.sweeps = get_u64(entry, where, "sweeps");
    stat.chunks = get_u64(entry, where, "chunks");
    stat.candidates = get_u64(entry, where, "candidates");
    stat.combinations = get_u64(entry, where, "combinations");
    stat.empty_polls = get_u64(entry, where, "empty_polls");
    stat.claim_seconds = get_number(entry, where, "claim_seconds");
    stat.eval_seconds = get_number(entry, where, "eval_seconds");
    stat.tail_idle_seconds = get_number(entry, where, "tail_idle_seconds");
    const JsonValue& histogram = get_array(entry, where, "claim_histogram");
    if (histogram.size() != kClaimBuckets) {
      throw HostprofError("hostprof document: " + where + ".claim_histogram has " +
                          std::to_string(histogram.size()) + " buckets, expected " +
                          std::to_string(kClaimBuckets));
    }
    for (std::size_t b = 0; b < kClaimBuckets; ++b) {
      const JsonValue& count = histogram.at(b);
      if (!count.is_number()) {
        throw HostprofError("hostprof document: " + where + ".claim_histogram is not numeric");
      }
      stat.claim_histogram[b] = static_cast<std::uint64_t>(count.as_number());
    }
    stat.arena_peak_words = get_u64(entry, where, "arena_peak_words");
    stat.arena_capacity_words = get_u64(entry, where, "arena_capacity_words");
    stat.arena_blocks = get_u64(entry, where, "arena_blocks");
    stat.calls = calls_from_json(get_object(entry, where, "bitops_calls"), where + ".bitops_calls");
    profile.worker_stats.push_back(std::move(stat));
  }

  const JsonValue& sweeps = get_array(doc, "$", "sweeps");
  if (sweeps.size() != sweep_count) {
    throw HostprofError("hostprof document: workload.sweeps says " +
                        std::to_string(sweep_count) + " but the sweeps array has " +
                        std::to_string(sweeps.size()));
  }
  for (std::size_t i = 0; i < sweeps.size(); ++i) {
    const JsonValue& entry = sweeps.at(i);
    const std::string where = "sweeps[" + std::to_string(i) + "]";
    HostSweepStat stat;
    stat.index = static_cast<std::uint32_t>(get_u64(entry, where, "index"));
    stat.workers = static_cast<std::uint32_t>(get_u64(entry, where, "workers"));
    stat.chunk_size = get_u64(entry, where, "chunk_size");
    stat.chunk_count = get_u64(entry, where, "chunk_count");
    stat.lambda_end = get_u64(entry, where, "lambda_end");
    stat.chunks = get_u64(entry, where, "chunks");
    stat.candidates = get_u64(entry, where, "candidates");
    stat.combinations = get_u64(entry, where, "combinations");
    stat.polls = get_u64(entry, where, "polls");
    stat.wall_seconds = get_number(entry, where, "wall_seconds");
    stat.merge_seconds = get_number(entry, where, "merge_seconds");
    profile.sweeps.push_back(std::move(stat));
  }

  return profile;
}

// --------------------------------------------------------------- crosschecks

std::vector<std::string> hostprof_crosscheck(const HostProfile& profile) {
  std::vector<std::string> mismatches;
  const auto check_sum = [&](const char* what, std::uint64_t expected, std::uint64_t actual,
                             const char* against) {
    if (expected != actual) {
      mismatches.push_back(std::string(what) + " " + std::to_string(expected) + " != " +
                           std::to_string(actual) + " summed over " + against);
    }
  };

  std::uint64_t worker_chunks = 0, worker_candidates = 0, worker_combinations = 0;
  std::uint64_t worker_empty = 0;
  HostBitopsCalls worker_calls;
  for (const HostWorkerStat& worker : profile.worker_stats) {
    worker_chunks += worker.chunks;
    worker_candidates += worker.candidates;
    worker_combinations += worker.combinations;
    worker_empty += worker.empty_polls;
    worker_calls += worker.calls;
    std::uint64_t mass = 0;
    for (const std::uint64_t count : worker.claim_histogram) mass += count;
    if (mass != worker.chunks + worker.empty_polls) {
      mismatches.push_back("worker " + std::to_string(worker.worker) + " claim histogram mass " +
                           std::to_string(mass) + " != polls " +
                           std::to_string(worker.chunks + worker.empty_polls));
    }
  }
  check_sum("totals.chunks", profile.total_chunks, worker_chunks, "workers");
  check_sum("totals.candidates", profile.total_candidates, worker_candidates, "workers");
  check_sum("totals.combinations", profile.total_combinations, worker_combinations, "workers");
  check_sum("totals.empty_polls", profile.total_empty_polls, worker_empty, "workers");
  check_sum("totals.bitops_calls.total", profile.total_calls.total(), worker_calls.total(),
            "workers");
  if (profile.total_claims != profile.total_chunks) {
    mismatches.push_back("totals.claims " + std::to_string(profile.total_claims) +
                         " != totals.chunks " + std::to_string(profile.total_chunks) +
                         " (every successful poll claims exactly one chunk)");
  }

  std::uint64_t sweep_chunks = 0, sweep_candidates = 0, sweep_combinations = 0;
  for (const HostSweepStat& sweep : profile.sweeps) {
    sweep_chunks += sweep.chunks;
    sweep_candidates += sweep.candidates;
    sweep_combinations += sweep.combinations;
    if (sweep.chunks != sweep.chunk_count) {
      mismatches.push_back("sweep " + std::to_string(sweep.index) + " evaluated " +
                           std::to_string(sweep.chunks) + " chunks but the queue held " +
                           std::to_string(sweep.chunk_count));
    }
    // Each launched worker's drain loop fails exactly once, so at quiescence
    // polls == chunk_count + workers — the ChunkQueue starvation invariant.
    if (sweep.polls != sweep.chunk_count + sweep.workers) {
      mismatches.push_back("sweep " + std::to_string(sweep.index) + " polls " +
                           std::to_string(sweep.polls) + " != chunk_count + workers " +
                           std::to_string(sweep.chunk_count + sweep.workers));
    }
  }
  check_sum("totals.chunks", profile.total_chunks, sweep_chunks, "sweeps");
  check_sum("totals.candidates", profile.total_candidates, sweep_candidates, "sweeps");
  check_sum("totals.combinations", profile.total_combinations, sweep_combinations, "sweeps");

  if (profile.workers != profile.worker_stats.size()) {
    mismatches.push_back("workload.workers " + std::to_string(profile.workers) +
                         " != workers table size " + std::to_string(profile.worker_stats.size()));
  }
  return mismatches;
}

// -------------------------------------------------------------------- folded

std::string hostprof_folded(const HostProfile& profile) {
  // Same collapsed-stack text folded_stacks() emits: integer self
  // microseconds per distinct stack, map-sorted, zero-µs stacks dropped.
  std::map<std::string, double> self;
  self["hostsweep;merge"] = profile.merge_seconds;
  for (const HostWorkerStat& worker : profile.worker_stats) {
    const std::string base = "hostsweep;worker " + std::to_string(worker.worker);
    self[base + ";claim"] = worker.claim_seconds;
    self[base + ";evaluate"] = worker.eval_seconds;
    self[base + ";tail_idle"] = worker.tail_idle_seconds;
  }
  std::string out;
  for (const auto& [stack, seconds] : self) {
    const auto micros = static_cast<std::int64_t>(std::llround(std::max(seconds, 0.0) * 1e6));
    if (micros <= 0) continue;
    out += stack;
    out += ' ';
    out += std::to_string(micros);
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------- text

std::string hostprof_text(const HostProfile& profile, bool summary) {
  std::string out = "host profile\n";
  out += "  workload: " + std::to_string(profile.sweeps.size()) + " sweeps, " +
         std::to_string(profile.workers) + " workers, chunk " +
         std::to_string(profile.chunk_size) + ", scheme " + profile.scheme + ", hits " +
         std::to_string(profile.hits) + ", lambda_end " + std::to_string(profile.lambda_end) +
         "\n";
  out += "  totals: " + std::to_string(profile.total_chunks) + " chunks (" +
         std::to_string(profile.total_empty_polls) + " empty polls), " +
         std::to_string(profile.total_candidates) + " candidates, " +
         std::to_string(profile.total_combinations) + " combinations\n";
  const std::uint64_t total_calls = profile.total_calls.total();
  if (profile.bitops_counted) {
    out += "  bitops (" + profile.backend + "): " + std::to_string(total_calls) + " calls";
    if (profile.total_combinations > 0) {
      out += ", " +
             fmt("%.3f", static_cast<double>(total_calls) /
                             static_cast<double>(profile.total_combinations)) +
             " per combination";
    }
    out += "\n";
    for (const OpField& op : kOpFields) {
      const std::uint64_t calls = profile.total_calls.*op.member;
      if (calls == 0) continue;
      out += std::string("    ") + op.name + ": " + std::to_string(calls) + " (" +
             fmt("%.1f", 100.0 * static_cast<double>(calls) / static_cast<double>(total_calls)) +
             "%)\n";
    }
  } else {
    out += "  bitops (" + profile.backend + "): call counting off\n";
  }
  const double worker_seconds =
      profile.eval_seconds + profile.claim_seconds + profile.tail_idle_seconds;
  out += "  wallclock: wall " + fmt("%.6g", profile.wall_seconds) + " s, eval " +
         fmt("%.6g", profile.eval_seconds) + " s";
  if (worker_seconds > 0.0) {
    out += " (" + fmt("%.1f", 100.0 * profile.eval_seconds / worker_seconds) + "% of worker time)";
  }
  out += ", claim " + fmt("%.6g", profile.claim_seconds) + " s, merge " +
         fmt("%.6g", profile.merge_seconds) + " s, tail idle " +
         fmt("%.6g", profile.tail_idle_seconds) + " s\n";
  if (profile.wall_seconds > 0.0) {
    out += "  throughput: " +
           fmt("%.6g", static_cast<double>(profile.total_combinations) / profile.wall_seconds) +
           " combos/s\n";
  }
  out += "  arena: peak " + std::to_string(profile.arena_peak_words_max) + " words\n";
  out += "  imbalance (max/mean across workers):\n";
  for (const char* phase : {"evaluate", "claim", "tail_idle"}) {
    const PhaseStat stat = hostprof_imbalance(profile, phase);
    out += std::string("    ") + phase + ": mean " + fmt("%.6g", stat.mean_seconds) + " s, max " +
           fmt("%.6g", stat.max_seconds) + " s (worker " + std::to_string(stat.straggler_lane) +
           "), max/mean " + fmt("%.3f", stat.max_over_mean) + "\n";
  }
  if (!summary && !profile.worker_stats.empty()) {
    out += "  workers:\n";
    for (const HostWorkerStat& worker : profile.worker_stats) {
      out += "    " + std::to_string(worker.worker) + ": chunks " +
             std::to_string(worker.chunks) + ", combos " + std::to_string(worker.combinations) +
             ", eval " + fmt("%.6g", worker.eval_seconds) + " s, claim " +
             fmt("%.6g", worker.claim_seconds) + " s, idle " +
             fmt("%.6g", worker.tail_idle_seconds) + " s, arena peak " +
             std::to_string(worker.arena_peak_words) + " words\n";
    }
  }
  return out;
}

}  // namespace multihit::obs
