#pragma once
// Online health monitor over the simulated-clock telemetry streams.
//
// The paper's runs live in a regime (1000 Summit nodes, 6000 GPUs) where
// rank failures and stragglers are routine, so an operator needs the layer
// that *watches*: something that turns the raw telemetry the Recorder
// collects into detections — "rank 3 went silent at t=212 ms", "rank 7 is a
// 2.5x straggler in iteration 4" — while the run is in flight. This header
// is that layer for the simulator. It replays a run's trace in simulated-
// time order (the simulation is serial, so "online" means: every decision
// at sample boundary t uses only observations with timestamp <= t) and
// produces a deterministic `multihit.health.v1` artifact.
//
// Three parts:
//   1. a time-series sampler that snapshots every counter track in the
//      trace (heartbeats, GPU occupancy / DRAM throughput, retransmit
//      counts) at a configurable simulated-time cadence, keeping an exact
//      ring-buffered window per (series, lane) — values are copied, never
//      re-derived, so there is no float drift across runs;
//   2. a declarative alert-rule engine (threshold / rate-of-change /
//      absence / cross-rank-imbalance rule kinds, parse_rules grammar
//      below) evaluated at sample boundaries, emitting Incident records
//      with fire/clear timestamps on the simulated clock, the offending
//      lane, the observed value, and the enclosing span;
//   3. built-in detectors keyed to the paper's failure modes: dead-rank
//      via heartbeat loss within the SimComm detection window, straggler
//      via per-iteration lane-duration deviation across ranks (baselined
//      per lane so a deliberately imbalanced equi-distance schedule does
//      not false-fire), message-drop via retransmit-rate bursts,
//      comm-overhead-fraction breach (Fig. 8), and GPU DRAM-throughput
//      collapse from the PR 4 counter tracks.
//
// Detection must come from telemetry alone: trace events in the "fault"
// category (the injector's ground-truth instants) are invisible to the
// monitor. The injected plan is instead exported as TruthEvents and scored
// against the incidents with score_incidents — per-class recall, false
// positives, and detection latency — which is what makes detector quality
// a testable property rather than a vibe.
//
// Rule grammar (one rule per line, '#' comments, words split on blanks):
//
//   rule NAME threshold SERIES above|below VALUE [hold N]
//   rule NAME rate      SERIES above|below DELTA window SECONDS
//   rule NAME absence   SERIES window SECONDS
//   rule NAME imbalance SERIES above|below RATIO
//
// threshold fires while a lane's sampled value compares true against VALUE
// for N consecutive boundaries (default 1); rate compares the value change
// over the trailing window; absence fires while a lane's newest raw sample
// is more than SECONDS older than the newest sample of the same series on
// any lane (fleet-relative, so a globally idle series never fires);
// imbalance fires while a lane's value compares true against RATIO times
// the mean of the other lanes carrying the series.
//
// SERIES may carry a label selector: `serve.wait_age{tenant=gold}` matches
// every sampled series whose base name is `serve.wait_age` AND whose
// embedded labels (see slo.hpp's series_with_labels) include tenant=gold; a
// bare base name matches all labeled variants, so imbalance rules compare
// across tenants. A malformed selector (unclosed brace, empty key/value) is
// a parse error naming the offending line.
//
// PR 8 adds serve-lane detectors over the job service's scheduler-lane
// telemetry (src/serve/service.cpp): queue_saturation (serve.queue_depth
// at/above the declared serve.queue_capacity), tenant_starvation (a
// tenant's admitted-but-not-scheduled age vs the other tenants' mean — the
// fleet-relative baseline, so a global backlog is overload, not
// starvation), cache_thrash (invalidation-driven dataset rebuilds within a
// trailing window), and — when MonitorOptions::slo carries budget
// objectives — slo_fast_burn / slo_slow_burn (windowed bad-request
// fraction over budget, the SRE multi-window burn alert). Their incidents
// land on the scheduler lane with the tenant label filled in. The burn and
// thrash windows must fit inside the sampler's retained history
// (window_samples * sample_every); serve traces are monitored at coarse
// cadences (~0.5-1 s), not the default 5 ms.

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/schema.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"

namespace multihit::obs {

/// Raised on invalid monitor options, malformed rule files, and ill-shaped
/// truth documents. (Malformed JSON raises JsonParseError earlier.)
class MonitorError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class RuleKind { kThreshold, kRate, kAbsence, kImbalance };
enum class RuleCmp { kAbove, kBelow };

/// One declarative alert rule (see the grammar above).
struct AlertRule {
  std::string name;
  RuleKind kind = RuleKind::kThreshold;
  std::string series;      ///< base series name (selector labels split off)
  SeriesLabels labels;     ///< label selector; empty matches every variant
  RuleCmp cmp = RuleCmp::kAbove;
  double value = 0.0;      ///< threshold / minimum delta / imbalance ratio
  double window = 0.0;     ///< trailing seconds (rate, absence)
  std::uint32_t hold = 1;  ///< consecutive breached boundaries before firing
};

/// Parses the rule grammar; throws MonitorError naming the offending line.
std::vector<AlertRule> parse_rules(std::string_view text);

struct MonitorOptions {
  /// Sample-boundary cadence in simulated seconds.
  double sample_every = 0.005;
  /// Ring-buffer depth per (series, lane): boundaries of history retained.
  std::uint32_t window_samples = 16;
  /// Master switch for the built-in failure-mode detectors.
  bool builtin_detectors = true;
  /// dead_rank: heartbeat silence beyond this vs the fleet's newest
  /// heartbeat. Matches CommCostModel::detection_window by default.
  double heartbeat_timeout = 0.05;
  /// straggler: a lane fires when its per-iteration compute duration,
  /// normalized by the other lanes' mean, exceeds this multiple of its own
  /// cross-iteration baseline ratio.
  double straggler_ratio = 1.6;
  /// gpu_collapse: a computing lane fires while its DRAM throughput sits
  /// below this fraction of the fleet median.
  double collapse_fraction = 0.5;
  /// comm_overhead: fires while cumulative comm seconds across rank lanes
  /// exceed this fraction of cumulative busy seconds (a Fig. 8 breach —
  /// communication dominating instead of hiding under compute). The default
  /// sits well above the functional-scale runs' natural ~20% fraction;
  /// paper-scale traces, where Fig. 8 reports single-digit percentages,
  /// would configure 0.1-0.15.
  double comm_overhead_threshold = 0.5;
  /// message_drop: fires while the retransmit count grew within this
  /// trailing window (seconds).
  double drop_window = 0.05;
  /// queue_saturation: fires while serve.queue_depth sits at or above this
  /// fraction of the declared serve.queue_capacity.
  double queue_saturation_fraction = 1.0;
  /// tenant_starvation: a tenant's oldest admitted-but-not-scheduled age
  /// fires when it exceeds this multiple of the other tenants' mean wait
  /// age AND the absolute floor below (so a brief fair backlog is silent).
  double starvation_ratio = 4.0;
  double starvation_min_age = 30.0;
  /// cache_thrash: fires while at least thrash_rebuilds invalidation-driven
  /// dataset rebuilds landed within the trailing thrash_window seconds.
  double thrash_window = 60.0;
  std::uint32_t thrash_rebuilds = 3;
  /// slo_fast_burn / slo_slow_burn: windowed bad fraction over budget
  /// (burn rate) at or above these multiples fires; windows come from the
  /// budget objectives in `slo`. The defaults are the SRE fast/slow page
  /// thresholds. A window needs at least burn_min_events resolved requests
  /// before it can fire (one stray rejection is not a burn).
  double fast_burn_threshold = 14.4;
  double slow_burn_threshold = 6.0;
  std::uint32_t burn_min_events = 4;
  /// SLO objectives (parse_slo). Budget objectives arm the burn detectors;
  /// their windows must fit the retained history (window_samples *
  /// sample_every), validated up front.
  std::vector<SloObjective> slo;
  /// User rules, evaluated after the built-in detectors each boundary.
  std::vector<AlertRule> rules;
};

/// One fired alert. `cleared` is the boundary the condition stopped holding
/// (== the final boundary, with `open` set, when it never stopped).
struct Incident {
  std::string rule;  ///< detector or rule name ("dead_rank", ...)
  std::string kind;  ///< "detector" or the rule kind keyword
  std::uint32_t lane = 0;
  std::string tenant;  ///< tenant label on serve-lane incidents ("" none)
  double fired = 0.0;
  double cleared = 0.0;
  bool open = false;
  double value = 0.0;        ///< observed value at fire time
  std::string span;          ///< innermost enclosing span at fire ("" none)
  std::int64_t iteration = -1;  ///< greedy iteration context (-1 none)
};

/// Sampler inventory for one (series, lane): lifetime stats over the raw
/// samples plus the trailing ring window of boundary snapshots.
struct SeriesStat {
  std::string series;
  std::uint32_t lane = 0;
  std::uint64_t samples = 0;  ///< raw counter samples observed
  double last_at = 0.0;       ///< timestamp of the newest raw sample
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;
  /// Trailing (boundary, value) ring, oldest first, <= window_samples deep.
  std::vector<std::pair<double, double>> window;
};

struct HealthReport {
  MonitorOptions options;  ///< echo of the evaluated configuration
  double makespan = 0.0;
  std::uint64_t boundaries = 0;
  std::uint32_t rank_lanes = 0;  ///< rank lanes seen carrying telemetry
  std::vector<SeriesStat> series;
  std::vector<Incident> incidents;  ///< in fire order (boundary, detector, lane)
};

/// Replays `trace` through the sampler + rule engine + detectors. Pure and
/// deterministic: same trace + options => identical report, and running it
/// never touches the trace (bit-identical-off falls out for free).
HealthReport monitor_trace(const Tracer& trace, const MonitorOptions& options = {});

/// Renders the multihit.health.v1 JSON document (stable field order; two
/// identical runs produce byte-identical documents).
JsonValue health_report(const HealthReport& report);

/// Human-readable rendering; `summary_only` stops after the per-rule counts.
std::string health_text(const HealthReport& report, bool summary_only = false);

/// Consistency of the incidents against a --metrics-out snapshot: lanes with
/// dead_rank incidents must match cluster.ranks_lost, and message_drop
/// incidents must appear iff comm.retransmits counted any. Returns
/// human-readable mismatches (empty = consistent).
std::vector<std::string> health_crosscheck(const HealthReport& report,
                                           const JsonValue& metrics);

/// Adds one "health.<rule>" instant per incident onto the offending lane at
/// its fire time (category "health"), so incidents line up under the spans
/// in the Chrome/Perfetto viewer. Intended for a copy of the trace about to
/// be written out — primary artifacts stay byte-identical without it.
void annotate_trace(Tracer& trace, const HealthReport& report);

// ---------------------------------------------------------------------------
// Ground truth. The neutral event shape lives here (not in src/fault)
// because fault links against obs; src/fault converts its FaultRecords into
// TruthEvents for export.

/// One injected fault, as the scorer sees it. `kind` uses the fault layer's
/// names: "crash", "straggler", "drop", "abort".
struct TruthEvent {
  std::string kind;
  std::uint32_t rank = 0;
  std::uint32_t iteration = 0;
  double sim_time = 0.0;  ///< injection time on the simulated clock
};

/// multihit.truth.v1 document for a --truth-out file.
JsonValue truth_json(const std::vector<TruthEvent>& events);

/// Parses a multihit.truth.v1 document; throws MonitorError on the wrong
/// schema (naming expected and found) or ill-shaped events.
std::vector<TruthEvent> truth_from_json(const JsonValue& doc);

struct ClassScore {
  std::uint32_t injected = 0;
  std::uint32_t detected = 0;
  double latency_mean = 0.0;  ///< mean fire delay after injection (s)
  double latency_max = 0.0;
};

struct HealthScore {
  /// Keyed by truth kind ("crash", "straggler", "drop", "abort").
  std::map<std::string, ClassScore> by_class;
  /// Built-in detector incidents no truth event accounts for.
  std::uint32_t false_positives = 0;
  std::vector<std::string> misses;    ///< truth events never detected
  std::vector<std::string> spurious;  ///< the false-positive incidents
  bool perfect() const noexcept;      ///< full recall and no false positives
};

/// Scores incidents against the injected ground truth. A truth event counts
/// as detected when an incident of its primary detector class (crash ->
/// dead_rank, straggler -> straggler, drop -> message_drop, abort ->
/// job_abort) on the matching lane overlaps [sim_time, sim_time +
/// detection_window]; corroborating classes (gpu_collapse for stragglers,
/// comm_overhead for drops) absorb matching incidents without counting as
/// detections. Unmatched built-in incidents are false positives; custom-rule
/// incidents are never scored.
HealthScore score_incidents(const HealthReport& report,
                            const std::vector<TruthEvent>& truth,
                            double detection_window);

std::string score_text(const HealthScore& score);

}  // namespace multihit::obs
