#pragma once
// One registry for every artifact schema tag the observability layer emits.
//
// Every JSON artifact written by this project carries a top-level
// `"schema": "multihit.<kind>.v1"` tag so offline tools can refuse the wrong
// file with a useful message instead of mis-parsing it. The constants used
// to live next to their writers (metrics.hpp, analyze.hpp, profile.hpp,
// bench.hpp); they are collected here so the full artifact surface is
// visible in one place and parsers share one mismatch-error shape that
// names both the expected and the found schema.

#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace multihit::obs {

/// MetricsRegistry::snapshot() documents (--metrics-out).
inline constexpr std::string_view kMetricsSchema = "multihit.metrics.v1";
/// Trace-analysis reports (obstool analyze --report-out).
inline constexpr std::string_view kAnalysisSchema = "multihit.analysis.v1";
/// Kernel-profiler artifacts (--profile-out).
inline constexpr std::string_view kProfileSchema = "multihit.profile.v1";
/// BenchReporter records (BENCH_*.json under $MULTIHIT_BENCH_DIR).
inline constexpr std::string_view kBenchSchema = "multihit.bench.v1";
/// Health-monitor reports (obstool monitor --health-out).
inline constexpr std::string_view kHealthSchema = "multihit.health.v1";
/// Fault-injection ground-truth exports (brca_scaleout --truth-out).
inline constexpr std::string_view kTruthSchema = "multihit.truth.v1";
/// Job-service trace-replay reports (multihit_serve --out).
inline constexpr std::string_view kServeSchema = "multihit.serve.v1";
/// Per-tenant SLO evaluations (obstool slo --report-out, multihit_serve
/// --slo-out).
inline constexpr std::string_view kSloSchema = "multihit.slo.v1";
/// Host-threaded sweep wall-clock profiles (brca_scaleout
/// --host-profile-out, obstool hostprof --report-out).
inline constexpr std::string_view kHostprofSchema = "multihit.hostprof.v1";
/// Per-invocation run manifests (--manifest-out / --artifacts-dir): the
/// driver's configuration plus a digest inventory of every emitted artifact.
inline constexpr std::string_view kRunSchema = "multihit.run.v1";
/// Cross-run regression reports (obstool diff --report-out).
inline constexpr std::string_view kDiffSchema = "multihit.diff.v1";

/// Chrome trace-event files (--trace-out) carry no top-level "schema" key —
/// the format is Chrome's, not ours — so run manifests inventory them under
/// this pseudo-tag. Never appears inside a document.
inline constexpr std::string_view kChromeTraceTag = "chrome.trace";

/// One row of the schema registry: the tag and the short artifact kind the
/// diff engine keys its loaders and series prefixes on.
struct SchemaEntry {
  std::string_view tag;
  std::string_view kind;
};

/// Every artifact schema this repository emits, in one table. The diff
/// engine resolves loaders through this registry; adding an artifact kind
/// means adding a row here, not teaching another tool a new string.
inline constexpr SchemaEntry kSchemaRegistry[] = {
    {kMetricsSchema, "metrics"}, {kAnalysisSchema, "analysis"},
    {kProfileSchema, "profile"}, {kBenchSchema, "bench"},
    {kHealthSchema, "health"},   {kTruthSchema, "truth"},
    {kServeSchema, "serve"},     {kSloSchema, "slo"},
    {kHostprofSchema, "hostprof"}, {kRunSchema, "run"},
    {kDiffSchema, "diff"},       {kChromeTraceTag, "trace"},
};

/// Short kind for a schema tag ("" when the tag is not in the registry).
constexpr std::string_view schema_kind(std::string_view tag) noexcept {
  for (const SchemaEntry& entry : kSchemaRegistry) {
    if (entry.tag == tag) return entry.kind;
  }
  return {};
}

/// Schema tag for a registered artifact kind ("" when unknown).
constexpr std::string_view schema_for_kind(std::string_view kind) noexcept {
  for (const SchemaEntry& entry : kSchemaRegistry) {
    if (entry.kind == kind) return entry.tag;
  }
  return {};
}

/// The top-level "schema" tag of a parsed document; Chrome trace files
/// (top-level "traceEvents", no tag) report kChromeTraceTag, anything else
/// without a string tag reports "".
inline std::string_view document_schema(const JsonValue& doc) {
  if (!doc.is_object()) return {};
  if (const JsonValue* schema = doc.find("schema");
      schema && schema->is_string()) {
    return schema->as_string();
  }
  if (doc.find("traceEvents")) return kChromeTraceTag;
  return {};
}

/// Validates `doc`'s top-level "schema" tag and throws `Error` on mismatch
/// with a message naming both the expected and the found schema — the found
/// half is what turns "is not a profile" into "you handed me the metrics
/// file".
template <typename Error>
void require_schema(const JsonValue& doc, std::string_view expected, std::string_view what) {
  const JsonValue* schema = doc.is_object() ? doc.find("schema") : nullptr;
  if (schema && schema->is_string() && schema->as_string() == expected) return;
  std::string found = "(missing)";
  if (schema) found = schema->is_string() ? "\"" + schema->as_string() + "\"" : "(non-string)";
  throw Error(std::string(what) + ": expected schema \"" + std::string(expected) +
              "\", found " + found);
}

}  // namespace multihit::obs
