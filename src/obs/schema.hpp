#pragma once
// One registry for every artifact schema tag the observability layer emits.
//
// Every JSON artifact written by this project carries a top-level
// `"schema": "multihit.<kind>.v1"` tag so offline tools can refuse the wrong
// file with a useful message instead of mis-parsing it. The constants used
// to live next to their writers (metrics.hpp, analyze.hpp, profile.hpp,
// bench.hpp); they are collected here so the full artifact surface is
// visible in one place and parsers share one mismatch-error shape that
// names both the expected and the found schema.

#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace multihit::obs {

/// MetricsRegistry::snapshot() documents (--metrics-out).
inline constexpr std::string_view kMetricsSchema = "multihit.metrics.v1";
/// Trace-analysis reports (obstool analyze --report-out).
inline constexpr std::string_view kAnalysisSchema = "multihit.analysis.v1";
/// Kernel-profiler artifacts (--profile-out).
inline constexpr std::string_view kProfileSchema = "multihit.profile.v1";
/// BenchReporter records (BENCH_*.json under $MULTIHIT_BENCH_DIR).
inline constexpr std::string_view kBenchSchema = "multihit.bench.v1";
/// Health-monitor reports (obstool monitor --health-out).
inline constexpr std::string_view kHealthSchema = "multihit.health.v1";
/// Fault-injection ground-truth exports (brca_scaleout --truth-out).
inline constexpr std::string_view kTruthSchema = "multihit.truth.v1";
/// Job-service trace-replay reports (multihit_serve --out).
inline constexpr std::string_view kServeSchema = "multihit.serve.v1";
/// Per-tenant SLO evaluations (obstool slo --report-out, multihit_serve
/// --slo-out).
inline constexpr std::string_view kSloSchema = "multihit.slo.v1";
/// Host-threaded sweep wall-clock profiles (brca_scaleout
/// --host-profile-out, obstool hostprof --report-out).
inline constexpr std::string_view kHostprofSchema = "multihit.hostprof.v1";

/// Validates `doc`'s top-level "schema" tag and throws `Error` on mismatch
/// with a message naming both the expected and the found schema — the found
/// half is what turns "is not a profile" into "you handed me the metrics
/// file".
template <typename Error>
void require_schema(const JsonValue& doc, std::string_view expected, std::string_view what) {
  const JsonValue* schema = doc.is_object() ? doc.find("schema") : nullptr;
  if (schema && schema->is_string() && schema->as_string() == expected) return;
  std::string found = "(missing)";
  if (schema) found = schema->is_string() ? "\"" + schema->as_string() + "\"" : "(non-string)";
  throw Error(std::string(what) + ": expected schema \"" + std::string(expected) +
              "\", found " + found);
}

}  // namespace multihit::obs
