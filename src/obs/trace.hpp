#pragma once
// Span tracer over *simulated* clocks.
//
// Every timestamp fed to this tracer comes from the per-rank simulated
// clocks in SimComm / the cluster model, never from wall time, so traces
// are deterministic: two identical runs produce byte-identical trace files,
// and a diff between two trace files is a meaningful performance diff.
//
// Lanes: each trace event carries a lane id (`tid` in Chrome terms). MPI
// ranks trace on lane == rank; the greedy engine and driver-level phases
// (schedule build, recovery re-partition) trace on kEngineLane so they
// never collide with rank lanes. Spans on one lane must be appended in
// non-decreasing start-time order — per_lane_monotone() verifies it — with
// nesting expressed by containment (a GPU kernel span sits inside its
// rank's compute span), which is exactly how Chrome/Perfetto reconstruct
// the flame graph.
//
// Export: to_chrome_json() emits the Chrome trace-event format (the JSON
// array "traceEvents" flavor) with "X" complete events, "i" instants, and
// "M" thread-name metadata, timestamps in microseconds. Load it at
// chrome://tracing or https://ui.perfetto.dev.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace multihit::obs {

/// Lane for engine/driver-level spans, far above any plausible rank count.
inline constexpr std::uint32_t kEngineLane = 1u << 20;

/// Lane for schedule build/rebuild spans. Kept off the engine lane because a
/// mid-iteration rebuild begins after the iteration span that is appended
/// once the iteration commits — on one lane that would break the monotone
/// append order.
inline constexpr std::uint32_t kSchedulerLane = kEngineLane + 1;

/// String key/value annotations attached to a span ("args" in the viewer).
using SpanArgs = std::vector<std::pair<std::string, std::string>>;

struct TraceEvent {
  std::string name;
  std::string category;
  std::uint32_t lane = 0;
  double begin = 0.0;  ///< simulated seconds
  double end = 0.0;    ///< == begin for instant events
  bool instant = false;
  SpanArgs args;

  double duration() const noexcept { return end - begin; }
};

/// One sample of a numeric counter track (occupancy, DRAM throughput).
/// Exported as Chrome "C" events: Perfetto renders each (lane, name) pair as
/// a step-function strip under the lane's spans.
struct CounterSample {
  std::string name;
  std::uint32_t lane = 0;
  double at = 0.0;     ///< simulated seconds
  double value = 0.0;
};

/// One dependency edge between lanes: a message departing `from_lane` at
/// `from_time` and landing on `to_lane` at `to_time`. Exported as a Chrome
/// flow-event pair ("s"/"f" phases — Perfetto draws them as arrows) and
/// consumed by the trace analyzer as the cross-lane edges of the
/// happens-before graph. `binding` marks edges on which the receiver
/// actually waited (the sender's clock was ahead when the transfer started);
/// only binding edges can carry the critical path across lanes.
struct FlowEdge {
  std::string name;      ///< collective context: "reduce", "broadcast", "p2p"
  std::string category;
  std::uint32_t from_lane = 0;
  std::uint32_t to_lane = 0;
  double from_time = 0.0;  ///< simulated seconds at departure
  double to_time = 0.0;    ///< simulated seconds at arrival
  bool binding = false;
  SpanArgs args;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  Tracer(Tracer&&) = default;
  Tracer& operator=(Tracer&&) = default;

  /// Records a complete span [begin, end] on `lane`. Throws
  /// std::invalid_argument when end < begin (simulated clocks never run
  /// backwards; a violation is an instrumentation bug worth failing loudly).
  void complete(std::uint32_t lane, std::string_view name, std::string_view category,
                double begin, double end, SpanArgs args = {});

  /// Records an instant event (faults, checkpoints-taken marks).
  void instant(std::uint32_t lane, std::string_view name, std::string_view category,
               double at, SpanArgs args = {});

  /// Records a cross-lane dependency edge (one point-to-point message or
  /// collective hop). Kept separate from the span list — flows are emitted
  /// mid-collective, before the enclosing per-rank spans are appended, so
  /// folding them into the span stream would break the per-lane monotone
  /// append order. Throws std::invalid_argument on non-finite times or
  /// to_time < from_time (messages never arrive before they depart).
  void flow(std::uint32_t from_lane, double from_time, std::uint32_t to_lane, double to_time,
            std::string_view name, std::string_view category, bool binding,
            SpanArgs args = {});

  /// Records a counter-track sample: `name` on `lane` holds `value` from
  /// `at` until the next sample. Counters live outside the span stream (a
  /// sample between two spans does not break the per-lane monotone append
  /// invariant). Throws std::invalid_argument on non-finite inputs.
  void counter(std::uint32_t lane, std::string_view name, double at, double value);

  /// Human-readable lane name for the viewer ("rank 3", "engine").
  void set_lane_name(std::uint32_t lane, std::string_view name);

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  const std::vector<FlowEdge>& flows() const noexcept { return flows_; }
  const std::vector<CounterSample>& counters() const noexcept { return counters_; }
  const std::vector<std::pair<std::uint32_t, std::string>>& lane_names() const noexcept {
    return lane_names_;
  }
  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }

  /// True when, per lane, events were appended in non-decreasing start-time
  /// order — the invariant simulated clocks guarantee and trace viewers
  /// assume.
  bool per_lane_monotone() const;

  /// Chrome trace-event document:
  ///   {"displayTimeUnit": "ms", "traceEvents": [...]}.
  /// Span events are sorted by (lane, begin, -duration) so nested spans
  /// follow their parents; timestamps are microseconds of simulated time.
  /// Flow edges follow as "s"/"f" pairs sharing an "id" (their insertion
  /// index), with "binding" recorded in the start event's args so offline
  /// analysis can reconstruct the dependency graph.
  JsonValue chrome_trace() const;

  /// chrome_trace().dump() — the --trace-out file format.
  std::string to_chrome_json() const;

 private:
  std::vector<TraceEvent> events_;
  std::vector<FlowEdge> flows_;
  std::vector<CounterSample> counters_;
  std::vector<std::pair<std::uint32_t, std::string>> lane_names_;
};

}  // namespace multihit::obs
