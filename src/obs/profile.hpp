#pragma once
// Device-level kernel profiler: NVPROF-style per-launch counter records.
//
// The span tracer (trace.hpp) shows *when* a kernel ran; this module records
// *what the hardware did* during the launch — occupancy and resident warps,
// the warp-stall taxonomy of paper Fig. 6c, counted global-memory traffic
// before and after L2 row reuse, the MemOpt1/MemOpt2 prefetch-served bytes,
// the roofline position (compute-time vs memory-time), and the
// parallelReduceMax stage count. One KernelProfile is appended per simulated
// pipeline launch (maxF + reduce) by GpuDevice::record_launch through the
// Recorder seam; the cluster driver stamps each record with its rank / GPU
// slot / greedy iteration context and with the jittered simulated-clock
// placement so profile rows line up with the trace's gpu_kernel spans.
//
// Profiling is OFF by default even with a Recorder attached (enable() turns
// it on) and, like the rest of the obs layer, never affects selections or
// modeled times — the differential test in tests/test_profile.cpp enforces
// bit-identical-off.
//
// The exported artifact is the deterministic `multihit.profile.v1` JSON
// document (profile_report): the per-kernel table, per-rank×iteration
// rollups, a device roofline summary, and a per-GPU tetrahedral-slab
// workload heatmap. profile_crosscheck reconciles a profile against the
// Chrome trace and the metrics registry from the same run — the three
// artifacts describe one simulation and must agree exactly (see DESIGN.md
// §10 for the reconciliation rules).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "obs/schema.hpp"

namespace multihit::obs {

class Tracer;

/// Raised on structurally invalid profile documents (wrong schema, missing
/// kernel fields). Malformed JSON raises JsonParseError earlier.
class ProfileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The device constants a profile was priced against, echoed into the report
/// so roofline positions are interpretable offline. Mirrors DeviceSpec
/// without depending on gpusim (obs is a leaf library).
struct ProfileDevice {
  std::uint32_t sm_count = 0;
  std::uint32_t max_threads_per_sm = 0;
  std::uint32_t block_size = 0;
  std::uint32_t warp_size = 0;
  double dram_bandwidth = 0.0;  ///< B/s achievable
  double word_op_rate = 0.0;    ///< 64-bit word ops/s
  double l2_reuse = 0.0;        ///< counted-to-DRAM traffic ratio

  /// Roofline ridge point: word-ops per DRAM byte above which a kernel is
  /// compute-bound.
  double ridge_ops_per_byte() const noexcept {
    return dram_bandwidth > 0.0 ? word_op_rate / dram_bandwidth : 0.0;
  }
};

/// One simulated pipeline launch (maxF + parallelReduceMax) with its
/// hardware-counter view.
struct KernelProfile {
  // Launch context, stamped from Profiler::set_context (all zero for
  // standalone single-device runs).
  std::uint32_t rank = 0;       ///< MPI rank (node) that drove the launch
  std::uint32_t gpu = 0;        ///< fleet-wide GPU slot (unit index)
  std::uint32_t iteration = 0;  ///< greedy iteration
  bool recovery = false;        ///< re-run of a dead rank's λ range
  bool lost = false;            ///< the launching rank crashed this iteration

  // Tetrahedral-slab workload: threads [lambda_begin, lambda_end) of the
  // scheme's flattened combination space.
  std::uint64_t lambda_begin = 0;
  std::uint64_t lambda_end = 0;
  std::uint64_t combinations = 0;
  std::uint64_t blocks = 0;        ///< maxF blocks launched
  std::uint32_t reduce_stages = 0; ///< parallelReduceMax halving sweeps

  // Counted traffic.
  std::uint64_t word_ops = 0;        ///< AND+popcount word operations
  std::uint64_t candidate_bytes = 0; ///< per-block candidate list footprint
  double global_bytes = 0.0;   ///< counted global-memory bytes (pre-L2-reuse)
  double dram_bytes = 0.0;     ///< bytes reaching DRAM (post-L2-reuse)
  double local_bytes = 0.0;    ///< MemOpt1/2 prefetch-served bytes

  // Device-model profile (un-jittered).
  double occupancy = 0.0;
  double resident_warps = 0.0;      ///< occupancy × device warp capacity
  double mem_efficiency = 0.0;      ///< achieved fraction of peak bandwidth
  double compute_seconds = 0.0;     ///< op-throughput roofline
  double memory_seconds = 0.0;      ///< bandwidth roofline
  double reduce_seconds = 0.0;
  double overhead_seconds = 0.0;
  double modeled_seconds = 0.0;     ///< total modeled launch time
  bool memory_bound = false;
  double dram_throughput = 0.0;     ///< achieved B/s over the launch
  double arithmetic_intensity = 0.0;///< word_ops per DRAM byte

  // Simulated-clock placement as traced (jitter/noise/straggle applied by
  // the cluster driver); defaults to the un-jittered model for standalone
  // device runs.
  double sim_begin = 0.0;
  double sim_seconds = 0.0;

  // Warp-stall taxonomy fractions (paper Fig. 6c); sum to 1.
  double stall_memory_dependency = 0.0;
  double stall_memory_throttle = 0.0;
  double stall_execution_dependency = 0.0;
  double stall_other = 0.0;
};

/// Context the cluster driver sets before each device launch.
struct LaunchContext {
  std::uint32_t rank = 0;
  std::uint32_t gpu = 0;
  std::uint32_t iteration = 0;
  bool recovery = false;
};

/// Per-run launch-record collector, bundled into Recorder next to the
/// metrics registry and the tracer. Recording is append-only and reads
/// simulated state only — it never advances clocks or changes results.
class Profiler {
 public:
  void enable(bool on = true) noexcept { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }

  void set_context(const LaunchContext& context) noexcept { context_ = context; }
  const LaunchContext& context() const noexcept { return context_; }

  void set_device(const ProfileDevice& device) noexcept { device_ = device; }
  const ProfileDevice& device() const noexcept { return device_; }

  /// Appends one launch record, stamping the current context. No-op when
  /// profiling is disabled.
  void record(KernelProfile profile);

  /// Sets the simulated-clock placement of the most recent record (the
  /// cluster applies jitter/noise/straggle after the device returns). No-op
  /// when disabled or empty.
  void annotate_last(double sim_begin, double sim_seconds);

  /// Marks every non-recovery record of (rank, iteration) as lost — called
  /// when that rank crashes mid-compute and its candidates are discarded.
  void mark_node_lost(std::uint32_t rank, std::uint32_t iteration);

  const std::vector<KernelProfile>& records() const noexcept { return records_; }
  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }

 private:
  bool enabled_ = false;
  LaunchContext context_;
  ProfileDevice device_;
  std::vector<KernelProfile> records_;
};

// ---------------------------------------------------------------- artifacts

/// The multihit.profile.v1 document: device constants, the per-kernel table,
/// per-rank×iteration rollups, per-rank totals, a roofline summary, and the
/// per-GPU workload heatmap. Deterministic: byte-identical profilers render
/// byte-identical documents, and every derived section is recomputed from
/// the kernel table (so a round-tripped document re-renders byte-identically).
JsonValue profile_report(const Profiler& profiler);

/// Reconstructs a Profiler (records + device info, profiling enabled) from a
/// profile_report document. Throws ProfileError on wrong-schema or
/// ill-formed documents.
Profiler profiler_from_json(const JsonValue& doc);

/// Human-readable summary `multihit-obstool profile` prints: totals, the
/// roofline/stall overview, and (unless summary_only) the per-rank×iteration
/// rollup table.
std::string profile_text(const Profiler& profiler, bool summary_only = false);

/// Per-kernel roofline scatter (CSV): arithmetic intensity vs achieved
/// word-op and DRAM rates, one row per launch. Feed to any plotting tool.
std::string roofline_csv(const Profiler& profiler);

/// Per-GPU×iteration workload heatmap (CSV): kernels, combinations, DRAM
/// bytes, and simulated seconds per cell — the counter-level EA-vs-ED
/// imbalance view.
std::string heatmap_csv(const Profiler& profiler);

/// Reconciles a profile against the Chrome trace and/or metrics snapshot of
/// the same run. Returns human-readable mismatch descriptions; empty means
/// the artifacts agree. Rules (DESIGN.md §10):
///  - metrics: gpu.kernel_launches == 2 × records; gpu.blocks /
///    gpu.combinations / gpu.dram_bytes / gpu.candidate_bytes equal the
///    record sums exactly (identical accumulation order);
///  - trace: per rank lane, the multiset of gpu_kernel spans (count and
///    exact per-span global_bytes arg) equals the multiset of that rank's
///    records; span durations match sim_seconds to trace precision.
std::vector<std::string> profile_crosscheck(const Profiler& profiler, const Tracer* trace,
                                            const JsonValue* metrics);

}  // namespace multihit::obs
