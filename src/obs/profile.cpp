#include "obs/profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

#include "obs/trace.hpp"

namespace multihit::obs {

void Profiler::record(KernelProfile profile) {
  if (!enabled_) return;
  profile.rank = context_.rank;
  profile.gpu = context_.gpu;
  profile.iteration = context_.iteration;
  profile.recovery = context_.recovery;
  // Standalone device runs never annotate; default the traced placement to
  // the un-jittered model so every record has a usable duration.
  if (profile.sim_seconds == 0.0) profile.sim_seconds = profile.modeled_seconds;
  records_.push_back(std::move(profile));
}

void Profiler::annotate_last(double sim_begin, double sim_seconds) {
  if (!enabled_ || records_.empty()) return;
  records_.back().sim_begin = sim_begin;
  records_.back().sim_seconds = sim_seconds;
}

void Profiler::mark_node_lost(std::uint32_t rank, std::uint32_t iteration) {
  if (!enabled_) return;
  for (KernelProfile& profile : records_) {
    if (profile.rank == rank && profile.iteration == iteration && !profile.recovery) {
      profile.lost = true;
    }
  }
}

namespace {

std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, value);
  return buf;
}

JsonValue device_json(const ProfileDevice& device) {
  JsonValue out = JsonValue::object();
  out.set("sm_count", JsonValue(static_cast<double>(device.sm_count)));
  out.set("max_threads_per_sm", JsonValue(static_cast<double>(device.max_threads_per_sm)));
  out.set("block_size", JsonValue(static_cast<double>(device.block_size)));
  out.set("warp_size", JsonValue(static_cast<double>(device.warp_size)));
  out.set("dram_bandwidth", JsonValue(device.dram_bandwidth));
  out.set("word_op_rate", JsonValue(device.word_op_rate));
  out.set("l2_reuse", JsonValue(device.l2_reuse));
  out.set("ridge_ops_per_byte", JsonValue(device.ridge_ops_per_byte()));
  return out;
}

JsonValue kernel_json(const KernelProfile& k) {
  JsonValue out = JsonValue::object();
  out.set("rank", JsonValue(static_cast<double>(k.rank)));
  out.set("gpu", JsonValue(static_cast<double>(k.gpu)));
  out.set("iteration", JsonValue(static_cast<double>(k.iteration)));
  out.set("recovery", JsonValue(k.recovery));
  out.set("lost", JsonValue(k.lost));
  out.set("lambda_begin", JsonValue(static_cast<double>(k.lambda_begin)));
  out.set("lambda_end", JsonValue(static_cast<double>(k.lambda_end)));
  out.set("combinations", JsonValue(static_cast<double>(k.combinations)));
  out.set("blocks", JsonValue(static_cast<double>(k.blocks)));
  out.set("reduce_stages", JsonValue(static_cast<double>(k.reduce_stages)));
  out.set("word_ops", JsonValue(static_cast<double>(k.word_ops)));
  out.set("candidate_bytes", JsonValue(static_cast<double>(k.candidate_bytes)));
  out.set("global_bytes", JsonValue(k.global_bytes));
  out.set("dram_bytes", JsonValue(k.dram_bytes));
  out.set("local_bytes", JsonValue(k.local_bytes));
  out.set("occupancy", JsonValue(k.occupancy));
  out.set("resident_warps", JsonValue(k.resident_warps));
  out.set("mem_efficiency", JsonValue(k.mem_efficiency));
  out.set("compute_seconds", JsonValue(k.compute_seconds));
  out.set("memory_seconds", JsonValue(k.memory_seconds));
  out.set("reduce_seconds", JsonValue(k.reduce_seconds));
  out.set("overhead_seconds", JsonValue(k.overhead_seconds));
  out.set("modeled_seconds", JsonValue(k.modeled_seconds));
  out.set("memory_bound", JsonValue(k.memory_bound));
  out.set("dram_throughput", JsonValue(k.dram_throughput));
  out.set("arithmetic_intensity", JsonValue(k.arithmetic_intensity));
  out.set("sim_begin", JsonValue(k.sim_begin));
  out.set("sim_seconds", JsonValue(k.sim_seconds));
  out.set("stall_memory_dependency", JsonValue(k.stall_memory_dependency));
  out.set("stall_memory_throttle", JsonValue(k.stall_memory_throttle));
  out.set("stall_execution_dependency", JsonValue(k.stall_execution_dependency));
  out.set("stall_other", JsonValue(k.stall_other));
  return out;
}

double require_num(const JsonValue& obj, const char* key) {
  const JsonValue* value = obj.find(key);
  if (!value || !value->is_number()) {
    throw ProfileError(std::string("profile kernel entry missing numeric field '") + key + "'");
  }
  return value->as_number();
}

bool require_bool(const JsonValue& obj, const char* key) {
  const JsonValue* value = obj.find(key);
  if (!value || !value->is_bool()) {
    throw ProfileError(std::string("profile kernel entry missing boolean field '") + key + "'");
  }
  return value->as_bool();
}

/// Aggregates shared by the rollup, rank, and heatmap sections. Sums
/// accumulate in record order so they reproduce the metrics registry's
/// counter arithmetic exactly.
struct Rollup {
  std::uint64_t kernels = 0;
  std::uint64_t recovery_kernels = 0;
  std::uint64_t lost_kernels = 0;
  double combinations = 0.0;
  double blocks = 0.0;
  double word_ops = 0.0;
  double global_bytes = 0.0;
  double dram_bytes = 0.0;
  double local_bytes = 0.0;
  double sim_seconds = 0.0;       ///< summed GPU-seconds (GPUs run concurrently)
  double max_kernel_seconds = 0.0;
  double occupancy_sum = 0.0;
  std::uint64_t memory_bound = 0;
  // Stall fractions weighted by traced seconds (falls back to the plain mean
  // when every kernel is instantaneous).
  double stall_weight = 0.0;
  double w_mem_dep = 0.0, w_mem_throttle = 0.0, w_exec_dep = 0.0, w_other = 0.0;

  void absorb(const KernelProfile& k) {
    ++kernels;
    if (k.recovery) ++recovery_kernels;
    if (k.lost) ++lost_kernels;
    combinations += static_cast<double>(k.combinations);
    blocks += static_cast<double>(k.blocks);
    word_ops += static_cast<double>(k.word_ops);
    global_bytes += k.global_bytes;
    dram_bytes += k.dram_bytes;
    local_bytes += k.local_bytes;
    sim_seconds += k.sim_seconds;
    max_kernel_seconds = std::max(max_kernel_seconds, k.sim_seconds);
    occupancy_sum += k.occupancy;
    if (k.memory_bound) ++memory_bound;
    const double w = k.sim_seconds > 0.0 ? k.sim_seconds : 0.0;
    stall_weight += w;
    w_mem_dep += w * k.stall_memory_dependency;
    w_mem_throttle += w * k.stall_memory_throttle;
    w_exec_dep += w * k.stall_execution_dependency;
    w_other += w * k.stall_other;
  }

  double occupancy_mean() const {
    return kernels > 0 ? occupancy_sum / static_cast<double>(kernels) : 0.0;
  }
  double stall(double weighted, double fallback_sum) const {
    if (stall_weight > 0.0) return weighted / stall_weight;
    return kernels > 0 ? fallback_sum / static_cast<double>(kernels) : 0.0;
  }
};

/// Unweighted stall sums for the zero-duration fallback.
struct StallSums {
  double mem_dep = 0.0, mem_throttle = 0.0, exec_dep = 0.0, other = 0.0;
  void absorb(const KernelProfile& k) {
    mem_dep += k.stall_memory_dependency;
    mem_throttle += k.stall_memory_throttle;
    exec_dep += k.stall_execution_dependency;
    other += k.stall_other;
  }
};

void set_stalls(JsonValue& out, const Rollup& r, const StallSums& s) {
  out.set("stall_memory_dependency", JsonValue(r.stall(r.w_mem_dep, s.mem_dep)));
  out.set("stall_memory_throttle", JsonValue(r.stall(r.w_mem_throttle, s.mem_throttle)));
  out.set("stall_execution_dependency", JsonValue(r.stall(r.w_exec_dep, s.exec_dep)));
  out.set("stall_other", JsonValue(r.stall(r.w_other, s.other)));
}

}  // namespace

JsonValue profile_report(const Profiler& profiler) {
  const std::vector<KernelProfile>& records = profiler.records();

  JsonValue doc = JsonValue::object();
  doc.set("schema", JsonValue(kProfileSchema));
  doc.set("device", device_json(profiler.device()));

  JsonValue kernels = JsonValue::array();
  for (const KernelProfile& k : records) kernels.push_back(kernel_json(k));
  doc.set("kernels", std::move(kernels));

  // Per-rank×iteration rollups, sorted by (rank, iteration); recovery
  // launches roll into the iteration they repaired.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::pair<Rollup, StallSums>> by_iter;
  std::map<std::uint32_t, std::pair<Rollup, StallSums>> by_rank;
  // Heatmap cells keyed by (gpu slot, iteration).
  std::map<std::uint32_t, std::map<std::uint32_t, Rollup>> by_gpu;
  Rollup total;
  StallSums total_stalls;
  double modeled_total = 0.0;
  double candidate_total = 0.0;
  for (const KernelProfile& k : records) {
    auto& [iter_roll, iter_stalls] = by_iter[{k.rank, k.iteration}];
    iter_roll.absorb(k);
    iter_stalls.absorb(k);
    auto& [rank_roll, rank_stalls] = by_rank[k.rank];
    rank_roll.absorb(k);
    rank_stalls.absorb(k);
    by_gpu[k.gpu][k.iteration].absorb(k);
    total.absorb(k);
    total_stalls.absorb(k);
    modeled_total += k.modeled_seconds;
    candidate_total += static_cast<double>(k.candidate_bytes);
  }

  JsonValue rollups = JsonValue::array();
  for (const auto& [key, entry] : by_iter) {
    const auto& [roll, stalls] = entry;
    JsonValue row = JsonValue::object();
    row.set("rank", JsonValue(static_cast<double>(key.first)));
    row.set("iteration", JsonValue(static_cast<double>(key.second)));
    row.set("kernels", JsonValue(static_cast<double>(roll.kernels)));
    row.set("recovery_kernels", JsonValue(static_cast<double>(roll.recovery_kernels)));
    row.set("lost_kernels", JsonValue(static_cast<double>(roll.lost_kernels)));
    row.set("combinations", JsonValue(roll.combinations));
    row.set("blocks", JsonValue(roll.blocks));
    row.set("word_ops", JsonValue(roll.word_ops));
    row.set("global_bytes", JsonValue(roll.global_bytes));
    row.set("dram_bytes", JsonValue(roll.dram_bytes));
    row.set("local_bytes", JsonValue(roll.local_bytes));
    row.set("gpu_seconds", JsonValue(roll.sim_seconds));
    row.set("max_kernel_seconds", JsonValue(roll.max_kernel_seconds));
    row.set("occupancy_mean", JsonValue(roll.occupancy_mean()));
    row.set("memory_bound_kernels", JsonValue(static_cast<double>(roll.memory_bound)));
    set_stalls(row, roll, stalls);
    rollups.push_back(std::move(row));
  }
  doc.set("rollups", std::move(rollups));

  JsonValue ranks = JsonValue::array();
  for (const auto& [rank, entry] : by_rank) {
    const auto& [roll, stalls] = entry;
    JsonValue row = JsonValue::object();
    row.set("rank", JsonValue(static_cast<double>(rank)));
    row.set("kernels", JsonValue(static_cast<double>(roll.kernels)));
    row.set("lost_kernels", JsonValue(static_cast<double>(roll.lost_kernels)));
    row.set("combinations", JsonValue(roll.combinations));
    row.set("global_bytes", JsonValue(roll.global_bytes));
    row.set("dram_bytes", JsonValue(roll.dram_bytes));
    row.set("gpu_seconds", JsonValue(roll.sim_seconds));
    row.set("occupancy_mean", JsonValue(roll.occupancy_mean()));
    set_stalls(row, roll, stalls);
    ranks.push_back(std::move(row));
  }
  doc.set("ranks", std::move(ranks));

  // Device roofline summary over every launch.
  {
    JsonValue roofline = JsonValue::object();
    roofline.set("ridge_ops_per_byte", JsonValue(profiler.device().ridge_ops_per_byte()));
    roofline.set("memory_bound_kernels", JsonValue(static_cast<double>(total.memory_bound)));
    roofline.set("compute_bound_kernels",
                 JsonValue(static_cast<double>(total.kernels - total.memory_bound)));
    double min_intensity = 0.0, max_intensity = 0.0, sum_intensity = 0.0;
    double peak_throughput = 0.0, sum_throughput = 0.0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      const KernelProfile& k = records[i];
      if (i == 0) {
        min_intensity = max_intensity = k.arithmetic_intensity;
      } else {
        min_intensity = std::min(min_intensity, k.arithmetic_intensity);
        max_intensity = std::max(max_intensity, k.arithmetic_intensity);
      }
      sum_intensity += k.arithmetic_intensity;
      peak_throughput = std::max(peak_throughput, k.dram_throughput);
      sum_throughput += k.dram_throughput;
    }
    const double n = records.empty() ? 1.0 : static_cast<double>(records.size());
    roofline.set("min_intensity", JsonValue(min_intensity));
    roofline.set("max_intensity", JsonValue(max_intensity));
    roofline.set("mean_intensity", JsonValue(sum_intensity / n));
    roofline.set("mean_occupancy", JsonValue(total.occupancy_mean()));
    roofline.set("peak_dram_throughput", JsonValue(peak_throughput));
    roofline.set("mean_dram_throughput", JsonValue(sum_throughput / n));
    set_stalls(roofline, total, total_stalls);
    doc.set("roofline", std::move(roofline));
  }

  // Per-GPU tetrahedral-slab workload heatmap: one row per GPU slot, one
  // cell per iteration it launched in — EA-vs-ED imbalance at counter level.
  JsonValue heatmap = JsonValue::array();
  for (const auto& [gpu, cells] : by_gpu) {
    JsonValue row = JsonValue::object();
    row.set("gpu", JsonValue(static_cast<double>(gpu)));
    JsonValue cell_rows = JsonValue::array();
    for (const auto& [iteration, roll] : cells) {
      JsonValue cell = JsonValue::object();
      cell.set("iteration", JsonValue(static_cast<double>(iteration)));
      cell.set("kernels", JsonValue(static_cast<double>(roll.kernels)));
      cell.set("recovery_kernels", JsonValue(static_cast<double>(roll.recovery_kernels)));
      cell.set("combinations", JsonValue(roll.combinations));
      cell.set("global_bytes", JsonValue(roll.global_bytes));
      cell.set("dram_bytes", JsonValue(roll.dram_bytes));
      cell.set("gpu_seconds", JsonValue(roll.sim_seconds));
      cell_rows.push_back(std::move(cell));
    }
    row.set("cells", std::move(cell_rows));
    heatmap.push_back(std::move(row));
  }
  doc.set("heatmap", std::move(heatmap));

  JsonValue totals = JsonValue::object();
  totals.set("kernels", JsonValue(static_cast<double>(total.kernels)));
  totals.set("launches", JsonValue(static_cast<double>(2 * total.kernels)));
  totals.set("recovery_kernels", JsonValue(static_cast<double>(total.recovery_kernels)));
  totals.set("lost_kernels", JsonValue(static_cast<double>(total.lost_kernels)));
  totals.set("combinations", JsonValue(total.combinations));
  totals.set("blocks", JsonValue(total.blocks));
  totals.set("word_ops", JsonValue(total.word_ops));
  totals.set("candidate_bytes", JsonValue(candidate_total));
  totals.set("global_bytes", JsonValue(total.global_bytes));
  totals.set("dram_bytes", JsonValue(total.dram_bytes));
  totals.set("local_bytes", JsonValue(total.local_bytes));
  totals.set("gpu_seconds", JsonValue(total.sim_seconds));
  totals.set("modeled_seconds", JsonValue(modeled_total));
  doc.set("totals", std::move(totals));
  return doc;
}

Profiler profiler_from_json(const JsonValue& doc) {
  if (!doc.is_object()) throw ProfileError("profile document is not a JSON object");
  require_schema<ProfileError>(doc, kProfileSchema, "profile document");

  Profiler profiler;
  profiler.enable();

  const JsonValue* device = doc.find("device");
  if (!device || !device->is_object()) {
    throw ProfileError("profile document has no device object");
  }
  ProfileDevice spec;
  spec.sm_count = static_cast<std::uint32_t>(require_num(*device, "sm_count"));
  spec.max_threads_per_sm =
      static_cast<std::uint32_t>(require_num(*device, "max_threads_per_sm"));
  spec.block_size = static_cast<std::uint32_t>(require_num(*device, "block_size"));
  spec.warp_size = static_cast<std::uint32_t>(require_num(*device, "warp_size"));
  spec.dram_bandwidth = require_num(*device, "dram_bandwidth");
  spec.word_op_rate = require_num(*device, "word_op_rate");
  spec.l2_reuse = require_num(*device, "l2_reuse");
  profiler.set_device(spec);

  const JsonValue* kernels = doc.find("kernels");
  if (!kernels || !kernels->is_array()) {
    throw ProfileError("profile document has no kernels array");
  }
  for (std::size_t i = 0; i < kernels->size(); ++i) {
    const JsonValue& entry = kernels->at(i);
    if (!entry.is_object()) throw ProfileError("profile kernel entry is not a JSON object");
    KernelProfile k;
    k.rank = static_cast<std::uint32_t>(require_num(entry, "rank"));
    k.gpu = static_cast<std::uint32_t>(require_num(entry, "gpu"));
    k.iteration = static_cast<std::uint32_t>(require_num(entry, "iteration"));
    k.recovery = require_bool(entry, "recovery");
    k.lost = require_bool(entry, "lost");
    k.lambda_begin = static_cast<std::uint64_t>(require_num(entry, "lambda_begin"));
    k.lambda_end = static_cast<std::uint64_t>(require_num(entry, "lambda_end"));
    k.combinations = static_cast<std::uint64_t>(require_num(entry, "combinations"));
    k.blocks = static_cast<std::uint64_t>(require_num(entry, "blocks"));
    k.reduce_stages = static_cast<std::uint32_t>(require_num(entry, "reduce_stages"));
    k.word_ops = static_cast<std::uint64_t>(require_num(entry, "word_ops"));
    k.candidate_bytes = static_cast<std::uint64_t>(require_num(entry, "candidate_bytes"));
    k.global_bytes = require_num(entry, "global_bytes");
    k.dram_bytes = require_num(entry, "dram_bytes");
    k.local_bytes = require_num(entry, "local_bytes");
    k.occupancy = require_num(entry, "occupancy");
    k.resident_warps = require_num(entry, "resident_warps");
    k.mem_efficiency = require_num(entry, "mem_efficiency");
    k.compute_seconds = require_num(entry, "compute_seconds");
    k.memory_seconds = require_num(entry, "memory_seconds");
    k.reduce_seconds = require_num(entry, "reduce_seconds");
    k.overhead_seconds = require_num(entry, "overhead_seconds");
    k.modeled_seconds = require_num(entry, "modeled_seconds");
    k.memory_bound = require_bool(entry, "memory_bound");
    k.dram_throughput = require_num(entry, "dram_throughput");
    k.arithmetic_intensity = require_num(entry, "arithmetic_intensity");
    k.sim_begin = require_num(entry, "sim_begin");
    k.sim_seconds = require_num(entry, "sim_seconds");
    k.stall_memory_dependency = require_num(entry, "stall_memory_dependency");
    k.stall_memory_throttle = require_num(entry, "stall_memory_throttle");
    k.stall_execution_dependency = require_num(entry, "stall_execution_dependency");
    k.stall_other = require_num(entry, "stall_other");
    // Bypass context stamping: the record carries its own context.
    LaunchContext ctx{k.rank, k.gpu, k.iteration, k.recovery};
    profiler.set_context(ctx);
    profiler.record(std::move(k));
  }
  profiler.set_context({});
  return profiler;
}

std::string profile_text(const Profiler& profiler, bool summary_only) {
  const JsonValue doc = profile_report(profiler);
  const JsonValue& totals = *doc.find("totals");
  const JsonValue& roofline = *doc.find("roofline");
  const JsonValue& rollups = *doc.find("rollups");
  const JsonValue& ranks = *doc.find("ranks");
  const auto num = [](const JsonValue& obj, const char* key) {
    return obj.find(key)->as_number();
  };

  std::string out;
  out += "profile: " + fmt("%.0f", num(totals, "kernels")) + " kernel pipelines (" +
         fmt("%.0f", num(totals, "launches")) + " launches) across " +
         fmt("%.0f", static_cast<double>(ranks.size())) + " rank(s)\n";
  out += "  combinations " + fmt("%.6g", num(totals, "combinations")) + ", word ops " +
         fmt("%.6g", num(totals, "word_ops")) + ", GPU-seconds " +
         fmt("%.6g", num(totals, "gpu_seconds")) + "\n";
  out += "  traffic: counted global " + fmt("%.6g", num(totals, "global_bytes")) +
         " B -> DRAM " + fmt("%.6g", num(totals, "dram_bytes")) + " B, prefetch-served " +
         fmt("%.6g", num(totals, "local_bytes")) + " B, candidates " +
         fmt("%.6g", num(totals, "candidate_bytes")) + " B\n";
  out += "  roofline: ridge " + fmt("%.4g", num(roofline, "ridge_ops_per_byte")) +
         " ops/B; " + fmt("%.0f", num(roofline, "memory_bound_kernels")) +
         " memory-bound / " + fmt("%.0f", num(roofline, "compute_bound_kernels")) +
         " compute-bound; intensity mean " + fmt("%.4g", num(roofline, "mean_intensity")) +
         " ops/B; occupancy mean " + fmt("%.4g", num(roofline, "mean_occupancy")) + "\n";
  out += "  stalls (time-weighted): mem-dep " +
         fmt("%.1f", 100.0 * num(roofline, "stall_memory_dependency")) + "%  mem-throttle " +
         fmt("%.1f", 100.0 * num(roofline, "stall_memory_throttle")) + "%  exec-dep " +
         fmt("%.1f", 100.0 * num(roofline, "stall_execution_dependency")) + "%  other " +
         fmt("%.1f", 100.0 * num(roofline, "stall_other")) + "%\n";
  if (num(totals, "lost_kernels") > 0.0 || num(totals, "recovery_kernels") > 0.0) {
    out += "  faults: " + fmt("%.0f", num(totals, "lost_kernels")) + " launch(es) lost, " +
           fmt("%.0f", num(totals, "recovery_kernels")) + " recovery launch(es)\n";
  }
  if (summary_only) return out;

  out += "\n  rank iter  kernels     combinations       dram_bytes  gpu_seconds    occ  "
         "mem-dep\n";
  for (std::size_t i = 0; i < rollups.size(); ++i) {
    const JsonValue& row = rollups.at(i);
    char line[160];
    std::snprintf(line, sizeof line,
                  "  %4.0f %4.0f %8.0f %16.6g %16.6g %12.6g %6.3f %7.1f%%\n",
                  num(row, "rank"), num(row, "iteration"), num(row, "kernels"),
                  num(row, "combinations"), num(row, "dram_bytes"), num(row, "gpu_seconds"),
                  num(row, "occupancy_mean"), 100.0 * num(row, "stall_memory_dependency"));
    out += line;
  }
  return out;
}

std::string roofline_csv(const Profiler& profiler) {
  std::string out =
      "rank,gpu,iteration,recovery,arithmetic_intensity,word_ops_per_sec,"
      "dram_bytes_per_sec,occupancy,memory_bound,sim_seconds\n";
  for (const KernelProfile& k : profiler.records()) {
    const double ops_rate =
        k.sim_seconds > 0.0 ? static_cast<double>(k.word_ops) / k.sim_seconds : 0.0;
    out += std::to_string(k.rank) + ',' + std::to_string(k.gpu) + ',' +
           std::to_string(k.iteration) + ',' + (k.recovery ? "1," : "0,") +
           json_number(k.arithmetic_intensity) + ',' + json_number(ops_rate) + ',' +
           json_number(k.dram_throughput) + ',' + json_number(k.occupancy) + ',' +
           (k.memory_bound ? "1," : "0,") + json_number(k.sim_seconds) + '\n';
  }
  return out;
}

std::string heatmap_csv(const Profiler& profiler) {
  std::map<std::uint32_t, std::map<std::uint32_t, Rollup>> by_gpu;
  for (const KernelProfile& k : profiler.records()) by_gpu[k.gpu][k.iteration].absorb(k);
  std::string out = "gpu,iteration,kernels,combinations,global_bytes,dram_bytes,gpu_seconds\n";
  for (const auto& [gpu, cells] : by_gpu) {
    for (const auto& [iteration, roll] : cells) {
      out += std::to_string(gpu) + ',' + std::to_string(iteration) + ',' +
             std::to_string(roll.kernels) + ',' + json_number(roll.combinations) + ',' +
             json_number(roll.global_bytes) + ',' + json_number(roll.dram_bytes) + ',' +
             json_number(roll.sim_seconds) + '\n';
    }
  }
  return out;
}

namespace {

/// Sorted per-rank value multisets compared element-wise. Exact equality is
/// intentional for counted quantities (both sides carry the same doubles);
/// `tolerance` loosens it for quantities that survive a microsecond
/// round-trip through the Chrome trace.
bool multiset_equal(std::vector<double> a, std::vector<double> b, double tolerance,
                    std::size_t* index, double* lhs, double* rhs) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double allowed = tolerance * std::max({1.0, std::abs(a[i]), std::abs(b[i])});
    if (!(std::abs(a[i] - b[i]) <= allowed)) {
      *index = i;
      *lhs = a[i];
      *rhs = b[i];
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<std::string> profile_crosscheck(const Profiler& profiler, const Tracer* trace,
                                            const JsonValue* metrics) {
  std::vector<std::string> mismatches;
  const std::vector<KernelProfile>& records = profiler.records();

  if (metrics) {
    // Reproduce the registry's accumulation: one Counter::add per launch in
    // record order, so the sums are bit-for-bit the counter values.
    const JsonValue* counters = metrics->find("counters");
    if (!counters || !counters->is_array()) {
      mismatches.push_back("metrics snapshot has no counters array");
    } else {
      std::map<std::string, double> totals;
      for (std::size_t i = 0; i < counters->size(); ++i) {
        const JsonValue& entry = counters->at(i);
        const JsonValue* name = entry.find("name");
        const JsonValue* value = entry.find("value");
        if (name && name->is_string() && value && value->is_number()) {
          totals[name->as_string()] += value->as_number();
        }
      }
      double launches = 0.0, blocks = 0.0, combinations = 0.0, word_ops = 0.0;
      double global_bytes = 0.0, candidate_bytes = 0.0;
      for (const KernelProfile& k : records) {
        launches += 2.0;
        blocks += static_cast<double>(k.blocks);
        combinations += static_cast<double>(k.combinations);
        word_ops += static_cast<double>(k.word_ops);
        global_bytes += k.global_bytes;
        candidate_bytes += static_cast<double>(k.candidate_bytes);
      }
      const auto check = [&](const char* counter, double expected) {
        const auto it = totals.find(counter);
        const double actual = it != totals.end() ? it->second : 0.0;
        if (actual != expected) {
          mismatches.push_back(std::string("metrics counter ") + counter + " total " +
                               json_number(actual) + " != profile sum " +
                               json_number(expected));
        }
      };
      check("gpu.kernel_launches", launches);
      check("gpu.blocks", blocks);
      check("gpu.combinations", combinations);
      check("gpu.word_ops", word_ops);
      check("gpu.dram_bytes", global_bytes);  // the counter counts pre-reuse bytes
      check("gpu.candidate_bytes", candidate_bytes);
    }
  }

  if (trace) {
    // Per rank lane: every profiled launch must appear as exactly one
    // gpu_kernel span, with matching counted traffic and traced duration.
    std::map<std::uint32_t, std::vector<double>> span_bytes, span_durations;
    std::map<std::uint32_t, std::size_t> span_count;
    bool args_ok = true;
    for (const TraceEvent& event : trace->events()) {
      if (event.name != "gpu_kernel" || event.lane >= kEngineLane) continue;
      ++span_count[event.lane];
      span_durations[event.lane].push_back(event.duration());
      bool found = false;
      for (const auto& [key, value] : event.args) {
        if (key == "global_bytes") {
          span_bytes[event.lane].push_back(std::strtod(value.c_str(), nullptr));
          found = true;
          break;
        }
      }
      if (!found && args_ok) {
        mismatches.push_back("rank " + std::to_string(event.lane) +
                             ": gpu_kernel span missing global_bytes arg");
        args_ok = false;
      }
    }
    std::map<std::uint32_t, std::vector<double>> record_bytes, record_durations;
    for (const KernelProfile& k : records) {
      record_bytes[k.rank].push_back(k.global_bytes);
      record_durations[k.rank].push_back(k.sim_seconds);
    }
    for (const auto& [rank, bytes] : record_bytes) {
      const auto it = span_count.find(rank);
      const std::size_t spans = it != span_count.end() ? it->second : 0;
      if (spans != bytes.size()) {
        mismatches.push_back("rank " + std::to_string(rank) + ": " + std::to_string(spans) +
                             " gpu_kernel span(s) != " + std::to_string(bytes.size()) +
                             " profiled kernel(s)");
        continue;
      }
      std::size_t index = 0;
      double lhs = 0.0, rhs = 0.0;
      if (args_ok &&
          !multiset_equal(span_bytes[rank], bytes, 0.0, &index, &lhs, &rhs)) {
        mismatches.push_back("rank " + std::to_string(rank) +
                             ": span global_bytes multiset differs from profile (sorted index " +
                             std::to_string(index) + ": " + json_number(lhs) + " vs " +
                             json_number(rhs) + ")");
      }
      // Durations survive a seconds -> microseconds -> seconds round-trip in
      // the Chrome export, so allow a relative 1e-9.
      if (!multiset_equal(span_durations[rank], record_durations[rank], 1e-9, &index, &lhs,
                          &rhs)) {
        mismatches.push_back("rank " + std::to_string(rank) +
                             ": span duration multiset differs from profile (sorted index " +
                             std::to_string(index) + ": " + json_number(lhs) + " vs " +
                             json_number(rhs) + ")");
      }
    }
    for (const auto& [rank, count] : span_count) {
      if (record_bytes.find(rank) == record_bytes.end()) {
        mismatches.push_back("rank " + std::to_string(rank) + ": " + std::to_string(count) +
                             " gpu_kernel span(s) but no profiled kernels");
      }
    }
  }

  return mismatches;
}

}  // namespace multihit::obs
