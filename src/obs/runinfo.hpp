#pragma once
// Per-invocation run manifests (multihit.run.v1).
//
// The paper's scaling claims are statements about *differences between
// runs* — more GPUs, a different scheduler, MemOpt on or off — so a run
// needs an identity before two of them can be compared. A manifest is that
// identity: which driver ran, under what configuration (gpus, scheme,
// scheduler, seeds, bitops backend, host threads, fault plan), and an
// inventory of every artifact the invocation emitted, each carrying its
// schema tag and a deterministic content digest. `brca_scaleout` and
// `multihit-serve` write one alongside their existing `--*-out` artifacts
// (--manifest-out, or implicitly via --artifacts-dir), and `obstool diff`
// consumes a pair of them to build a multihit.diff.v1 regression report.
//
// Determinism contract: config values are strings (no double formatting to
// drift), artifacts are sorted by name, digests are FNV-1a over the exact
// bytes on disk, and manifest_json/manifest_from_json round-trip
// byte-identically like every other obs artifact.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace multihit::obs {

/// Raised on malformed manifests and unreadable artifact files.
class RuninfoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// 64-bit FNV-1a over `bytes`, rendered as 16 lowercase hex digits. Not
/// cryptographic — it only has to make "these two files differ" cheap and
/// deterministic across platforms.
std::string content_digest(std::string_view bytes);

/// One emitted artifact: its role name ("metrics", "analysis", ...), the
/// path it was written to (relative paths resolve against the manifest's
/// own directory, which keeps --artifacts-dir run directories relocatable),
/// its schema tag, and the digest/size of the bytes on disk.
struct RunArtifact {
  std::string name;
  std::string path;
  std::string schema;
  std::string digest;
  std::uint64_t bytes = 0;
};

/// A driver invocation: who ran, with what knobs, emitting which files.
struct RunManifest {
  std::string driver;
  /// Sorted key/value configuration pairs; values are pre-rendered strings.
  std::vector<std::pair<std::string, std::string>> config;
  /// Sorted by artifact name.
  std::vector<RunArtifact> artifacts;
};

/// Appends a config entry, keeping `config` sorted by key.
void set_config(RunManifest& manifest, std::string key, std::string value);

/// Reads `path` back, digests it, and appends an inventory entry under
/// `name`/`schema`, keeping `artifacts` sorted by name. Throws RuninfoError
/// when the file cannot be read — an artifact the driver claims to have
/// written but cannot re-open is a bug worth failing on.
void add_artifact_from_file(RunManifest& manifest, std::string name,
                            std::string schema, const std::string& path);

/// Renders the multihit.run.v1 document (stable field order; identical
/// manifests produce byte-identical documents).
JsonValue manifest_json(const RunManifest& manifest);

/// Parses a multihit.run.v1 document back; throws RuninfoError on the wrong
/// schema (naming expected and found) or ill-shaped entries. Round-trip
/// through manifest_json is byte-identical.
RunManifest manifest_from_json(const JsonValue& doc);

/// Serializes manifest_json to `path` (trailing newline, like every other
/// artifact writer). Returns false when the file cannot be opened.
bool write_manifest(const RunManifest& manifest, const std::string& path);

/// The path to record in a manifest at `manifest_path` for an artifact at
/// `artifact_path`: relative when the artifact lives under the manifest's
/// directory (so --artifacts-dir run directories stay relocatable),
/// absolute otherwise (so stray cwd-relative --*-out paths still resolve).
std::string manifest_artifact_path(const std::string& artifact_path,
                                   const std::string& manifest_path);

}  // namespace multihit::obs
