#pragma once
// Wall-clock profiler for the host-threaded sweep — the first obs layer over
// real silicon rather than the simulated clock.
//
// The simulated cluster gets NVPROF-style profiles for free because its time
// is modeled; the host sweep (core/hostsweep.hpp) runs on actual threads, so
// its numbers are nondeterministic wall clock. This layer establishes the
// pattern every future real-hardware layer follows:
//
//   * structural/counted fields (chunk, claim, candidate, combination, and
//     dispatched bitops-call totals) are exact and deterministic — they land
//     in the report's "workload"/"totals" sections, are projected out by
//     hostprof_deterministic(), and are byte-compared across runs and
//     backends in scripts/ci.sh;
//   * raw timings (busy/idle breakdowns, claim-latency histograms, the
//     per-worker table) are quarantined in the report's wall-clock sections
//     and never gated on value — only on shape.
//
// Collection is deliberately single-threaded: workers fill private
// HostWorkerSample structs (core/hostsweep.cpp), and the orchestrating
// thread submits them after join. The profiler itself takes no locks and is
// touched by exactly one thread, so the TSan lane has nothing to find here —
// the interesting races live in the ChunkQueue and the bitops counting
// tables, both covered by the tsan preset.
//
// Rendering round-trips exactly: hostprof_report() is a pure function of the
// stored fields, and hostprof_from_json() recovers every stored field, so
// parse -> re-render reproduces the in-process document byte for byte
// (doubles survive via json_number's shortest round-trip form). Derived
// values (ratios, imbalance stats, histogram totals) are recomputed at
// render time from stored fields, never stored independently.

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/analyze.hpp"
#include "obs/json.hpp"

namespace multihit::obs {

/// Raised by hostprof_from_json on wrong-schema or ill-shaped documents.
class HostprofError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Claim-latency histogram bucket upper bounds (seconds); one extra bucket
/// catches everything above the last bound. Fixed log-spaced bounds keep the
/// report schema deterministic even though the counts are wall clock.
inline constexpr std::array<double, 7> kClaimBucketBounds = {1e-7, 1e-6, 1e-5, 1e-4,
                                                             1e-3, 1e-2, 1e-1};
inline constexpr std::size_t kClaimBuckets = kClaimBucketBounds.size() + 1;

/// Bucket index for one observed claim latency.
std::size_t claim_bucket(double seconds) noexcept;

/// Dispatched bitops call counts, mirrored as a plain struct so core can
/// hand deltas across without obs depending on the bitmat library.
struct HostBitopsCalls {
  std::uint64_t popcount_row = 0;
  std::uint64_t and2 = 0;
  std::uint64_t and3 = 0;
  std::uint64_t and4 = 0;
  std::uint64_t and_rows = 0;
  std::uint64_t and_rows_inplace = 0;
  std::uint64_t andnot2 = 0;
  std::uint64_t andnot_rows = 0;

  std::uint64_t total() const noexcept {
    return popcount_row + and2 + and3 + and4 + and_rows + and_rows_inplace + andnot2 +
           andnot_rows;
  }
  HostBitopsCalls& operator+=(const HostBitopsCalls& other) noexcept {
    popcount_row += other.popcount_row;
    and2 += other.and2;
    and3 += other.and3;
    and4 += other.and4;
    and_rows += other.and_rows;
    and_rows_inplace += other.and_rows_inplace;
    andnot2 += other.andnot2;
    andnot_rows += other.andnot_rows;
    return *this;
  }
};

/// What one worker measured over one sweep. Filled privately by the worker
/// thread (its own steady_clock spans, its own thread-local bitops
/// counters), submitted to the profiler by the orchestrator after join.
struct HostWorkerSample {
  std::uint64_t chunks = 0;
  std::uint64_t candidates = 0;
  std::uint64_t combinations = 0;
  std::uint64_t empty_polls = 0;
  HostBitopsCalls calls;
  double claim_seconds = 0.0;      ///< time between finishing a chunk and owning the next
  double eval_seconds = 0.0;       ///< time inside evaluate_chunk
  double tail_idle_seconds = 0.0;  ///< queue-drained to last-worker-join gap
  std::array<std::uint64_t, kClaimBuckets> claim_histogram{};
  std::uint64_t arena_peak_words = 0;
  std::uint64_t arena_capacity_words = 0;
  std::uint64_t arena_blocks = 0;
};

/// One worker slot aggregated across all profiled sweeps (slot i of sweep k
/// and slot i of sweep k+1 are different std::threads but the same logical
/// lane — the per-worker table and the folded flamegraph key on the slot).
struct HostWorkerStat : HostWorkerSample {
  std::uint32_t worker = 0;
  std::uint64_t sweeps = 0;  ///< sweeps in which this slot was launched
};

/// Per-sweep record (one host_sweep_find_best call; a greedy run produces
/// one per iteration).
struct HostSweepStat {
  std::uint32_t index = 0;
  std::uint32_t workers = 0;
  std::uint64_t chunk_size = 0;
  std::uint64_t chunk_count = 0;
  std::uint64_t lambda_end = 0;
  std::uint64_t chunks = 0;
  std::uint64_t candidates = 0;   ///< candidates merged (== valid chunks)
  std::uint64_t combinations = 0;
  std::uint64_t polls = 0;        ///< queue cursor at quiescence
  double wall_seconds = 0.0;      ///< launch to merged-result
  double merge_seconds = 0.0;     ///< deterministic candidate sort + fold
};

/// Everything the profiler accumulated. All fields are stored (not derived)
/// so a parsed profile re-renders byte-identically.
struct HostProfile {
  std::uint32_t hits = 0;
  std::string scheme;
  std::string backend;  ///< bitops backend name active during the sweeps
  bool bitops_counted = false;
  std::uint64_t chunk_size = 0;
  std::uint64_t lambda_end = 0;
  std::uint32_t workers = 0;  ///< worker slots (max across sweeps)

  // Deterministic totals.
  std::uint64_t total_chunks = 0;
  std::uint64_t total_claims = 0;
  std::uint64_t total_empty_polls = 0;
  std::uint64_t total_candidates = 0;
  std::uint64_t total_combinations = 0;
  HostBitopsCalls total_calls;
  std::uint64_t arena_peak_words_max = 0;

  // Wall-clock totals (quarantined: never byte-compared across runs).
  double wall_seconds = 0.0;
  double eval_seconds = 0.0;
  double claim_seconds = 0.0;
  double merge_seconds = 0.0;
  double tail_idle_seconds = 0.0;

  std::vector<HostWorkerStat> worker_stats;  ///< indexed by worker slot
  std::vector<HostSweepStat> sweeps;

  bool empty() const noexcept { return sweeps.empty(); }
};

/// Sweep-level facts the orchestrator knows before launching workers.
struct HostSweepSetup {
  std::uint32_t workers = 0;
  std::uint64_t chunk_size = 0;
  std::uint64_t chunk_count = 0;
  std::uint64_t lambda_end = 0;
  std::uint32_t hits = 0;
  std::string scheme;
  std::string backend;
  bool bitops_counted = false;
};

/// Sweep-level facts known only after workers join and candidates merge.
/// (Chunk/candidate/combination counts come from the worker samples.)
struct HostSweepClose {
  double wall_seconds = 0.0;
  double merge_seconds = 0.0;
  std::uint64_t polls = 0;
};

/// The collection seam core/hostsweep.cpp drives. All methods are called
/// from the orchestrating thread only; one sweep at a time.
class HostProfiler {
 public:
  HostProfiler() = default;
  HostProfiler(const HostProfiler&) = delete;
  HostProfiler& operator=(const HostProfiler&) = delete;

  /// Whether profiled sweeps should also swap the bitops dispatch to the
  /// counting tables (exact deterministic per-op call totals; measured cost
  /// is inside the <5% BENCH_hostprof overhead gate). core reads this.
  bool count_bitops = true;

  void begin_sweep(const HostSweepSetup& setup);
  void record_worker(std::uint32_t worker, const HostWorkerSample& sample);
  void end_sweep(const HostSweepClose& close);

  const HostProfile& profile() const noexcept { return profile_; }

 private:
  HostProfile profile_;
  bool in_sweep_ = false;
  HostSweepStat current_;
};

// ------------------------------------------------------------------ rendering

/// The multihit.hostprof.v1 document: deterministic "workload"/"totals"
/// sections first, then the quarantined wall-clock sections ("wallclock",
/// "backend" attribution, "imbalance" reusing the analyze-layer PhaseStat
/// shape, "claim_latency", per-"workers"/"sweeps" tables).
JsonValue hostprof_report(const HostProfile& profile);

/// Reverses hostprof_report exactly; throws HostprofError on wrong-schema or
/// ill-shaped documents. hostprof_report(hostprof_from_json(doc)) is
/// byte-identical to the original dump — the offline-replay gate.
HostProfile hostprof_from_json(const JsonValue& doc);

/// The deterministic projection: schema + workload + totals only. Runs of
/// the same configuration — any wall clock, any bitops backend — produce
/// byte-identical projections; scripts/ci.sh cmp's them.
JsonValue hostprof_deterministic(const HostProfile& profile);

/// Internal-consistency checks (totals vs per-worker and per-sweep sums,
/// histogram mass vs poll counts, queue poll invariants). Returns mismatch
/// descriptions; non-empty means a corrupt or hand-edited document, and
/// `obstool hostprof` exits 1.
std::vector<std::string> hostprof_crosscheck(const HostProfile& profile);

/// Per-worker imbalance over one wall-clock quantity, in the analyze layer's
/// PhaseStat shape (lanes = worker slots, straggler_lane = slot index).
PhaseStat hostprof_imbalance(const HostProfile& profile, const std::string& phase);

/// Collapsed-stack flamegraph lines ("hostsweep;worker 0;evaluate <µs>"),
/// same format folded_stacks() emits, so the existing obstool folded
/// pipeline and flamegraph.pl consume it unchanged.
std::string hostprof_folded(const HostProfile& profile);

/// Human-readable summary (`obstool hostprof` output); `summary` truncates
/// the per-worker table.
std::string hostprof_text(const HostProfile& profile, bool summary);

}  // namespace multihit::obs
