#pragma once
// Metrics registry: labeled counters, gauges, and histograms.
//
// This is the same counters/gauges/histograms shape large training stacks
// and HPC profilers expose, sized for the simulator: metrics are identified
// by (name, label set), instruments are cheap to update on hot paths (one
// add per point-to-point message), and a snapshot serializes the whole
// registry to a stable, diffable JSON document. Everything is deterministic
// — no wall-clock timestamps anywhere — so two identical runs produce
// byte-identical snapshots.
//
// Ownership: the registry owns every instrument and hands out references
// that stay valid for the registry's lifetime (instruments are
// node-allocated). Instrument lookups take a mutex; updates on an already
// held reference are lock-free. Hot paths should therefore hold the
// reference, not re-resolve the name.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/schema.hpp"

namespace multihit::obs {

/// Label set attached to one metric series, e.g. {{"op", "reduce"}}.
/// Canonicalized (sorted by key) at registration, so label order never
/// creates duplicate series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing count (messages, bytes, faults). Negative
/// increments throw — monotonicity is the counter contract.
class Counter {
 public:
  void add(double delta = 1.0);
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Last-write-wins instantaneous value (efficiency, fleet size).
class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Sample-exact distribution (latencies, occupancies). Samples are retained
/// in full — simulator runs observe thousands of points, not billions — so
/// percentiles are exact and match stats::percentile.
class Histogram {
 public:
  void observe(double value);

  std::uint64_t count() const noexcept { return samples_.size(); }
  double sum() const noexcept { return sum_; }
  double min() const noexcept;
  double max() const noexcept;
  /// Linear-interpolated percentile, p in [0, 100]; 0 when empty. Identical
  /// arithmetic to stats::percentile. Served from a lazily sorted cache, so
  /// a snapshot's p50/p90/p99 triple sorts each histogram once, not three
  /// times; observe() invalidates the cache. Not safe to race with observe()
  /// (same contract as every other read here).
  double percentile(double p) const;
  std::span<const double> samples() const noexcept { return samples_; }

 private:
  /// samples_ only ever grows, so a stale cache is exactly a shorter one.
  const std::vector<double>& sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_cache_;
  double sum_ = 0.0;
};

/// The instrument directory. One registry per run/recorder; see Recorder.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the instrument for (name, labels). Registering the
  /// same name with a different instrument kind throws std::invalid_argument.
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  Histogram& histogram(std::string_view name, Labels labels = {});

  std::size_t series_count() const;

  /// Snapshot of every series, sorted by (name, labels):
  ///   {"schema": "multihit.metrics.v1",
  ///    "counters":   [{"name":..., "labels":{...}, "value":...}],
  ///    "gauges":     [{"name":..., "labels":{...}, "value":...}],
  ///    "histograms": [{"name":..., "labels":{...}, "count":..., "sum":...,
  ///                    "min":..., "max":..., "p50":..., "p90":..., "p99":...}]}
  JsonValue snapshot() const;

  /// snapshot().dump() — the --metrics-out file format.
  std::string to_json() const;

 private:
  enum class InstrumentKind { kCounter, kGauge, kHistogram };
  struct Series {
    std::string name;
    Labels labels;
    InstrumentKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Series& resolve(std::string_view name, Labels labels, InstrumentKind kind);

  mutable std::mutex mutex_;
  /// Keyed by "name\x1f" + canonical labels; std::map gives the sorted
  /// iteration order snapshots rely on and node-stable instrument addresses.
  std::map<std::string, Series> series_;
};

}  // namespace multihit::obs
