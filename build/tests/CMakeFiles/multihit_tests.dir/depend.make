# Empty dependencies file for multihit_tests.
# This may be replaced when dependencies are built.
