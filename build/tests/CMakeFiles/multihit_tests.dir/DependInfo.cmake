
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analytic.cpp" "tests/CMakeFiles/multihit_tests.dir/test_analytic.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_analytic.cpp.o.d"
  "/root/repo/tests/test_binomial.cpp" "tests/CMakeFiles/multihit_tests.dir/test_binomial.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_binomial.cpp.o.d"
  "/root/repo/tests/test_bitmatrix.cpp" "tests/CMakeFiles/multihit_tests.dir/test_bitmatrix.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_bitmatrix.cpp.o.d"
  "/root/repo/tests/test_bitops.cpp" "tests/CMakeFiles/multihit_tests.dir/test_bitops.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_bitops.cpp.o.d"
  "/root/repo/tests/test_calibration.cpp" "tests/CMakeFiles/multihit_tests.dir/test_calibration.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_calibration.cpp.o.d"
  "/root/repo/tests/test_checkpoint.cpp" "tests/CMakeFiles/multihit_tests.dir/test_checkpoint.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_checkpoint.cpp.o.d"
  "/root/repo/tests/test_classifier.cpp" "tests/CMakeFiles/multihit_tests.dir/test_classifier.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_classifier.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/multihit_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_comm.cpp" "tests/CMakeFiles/multihit_tests.dir/test_comm.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_comm.cpp.o.d"
  "/root/repo/tests/test_device.cpp" "tests/CMakeFiles/multihit_tests.dir/test_device.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_device.cpp.o.d"
  "/root/repo/tests/test_divergence.cpp" "tests/CMakeFiles/multihit_tests.dir/test_divergence.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_divergence.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/multihit_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_generator.cpp" "tests/CMakeFiles/multihit_tests.dir/test_generator.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_generator.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/multihit_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_linearize.cpp" "tests/CMakeFiles/multihit_tests.dir/test_linearize.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_linearize.cpp.o.d"
  "/root/repo/tests/test_log.cpp" "tests/CMakeFiles/multihit_tests.dir/test_log.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_log.cpp.o.d"
  "/root/repo/tests/test_maf.cpp" "tests/CMakeFiles/multihit_tests.dir/test_maf.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_maf.cpp.o.d"
  "/root/repo/tests/test_maf_io.cpp" "tests/CMakeFiles/multihit_tests.dir/test_maf_io.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_maf_io.cpp.o.d"
  "/root/repo/tests/test_memaware.cpp" "tests/CMakeFiles/multihit_tests.dir/test_memaware.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_memaware.cpp.o.d"
  "/root/repo/tests/test_mutation_level.cpp" "tests/CMakeFiles/multihit_tests.dir/test_mutation_level.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_mutation_level.cpp.o.d"
  "/root/repo/tests/test_perfmodel.cpp" "tests/CMakeFiles/multihit_tests.dir/test_perfmodel.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_perfmodel.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/multihit_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_registry.cpp" "tests/CMakeFiles/multihit_tests.dir/test_registry.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_registry.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/multihit_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_schedule.cpp" "tests/CMakeFiles/multihit_tests.dir/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_schedule.cpp.o.d"
  "/root/repo/tests/test_schemes.cpp" "tests/CMakeFiles/multihit_tests.dir/test_schemes.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_schemes.cpp.o.d"
  "/root/repo/tests/test_schemes25.cpp" "tests/CMakeFiles/multihit_tests.dir/test_schemes25.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_schemes25.cpp.o.d"
  "/root/repo/tests/test_smsim.cpp" "tests/CMakeFiles/multihit_tests.dir/test_smsim.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_smsim.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/multihit_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/multihit_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_unrank.cpp" "tests/CMakeFiles/multihit_tests.dir/test_unrank.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_unrank.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/multihit_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/multihit_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/multihit_util.dir/DependInfo.cmake"
  "/root/repo/build/src/combinat/CMakeFiles/multihit_combinat.dir/DependInfo.cmake"
  "/root/repo/build/src/bitmat/CMakeFiles/multihit_bitmat.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/multihit_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/multihit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/multihit_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/multihit_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/multihit_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/multihit_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/multihit_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
