# Empty dependencies file for multihit_classify.
# This may be replaced when dependencies are built.
