file(REMOVE_RECURSE
  "libmultihit_classify.a"
)
