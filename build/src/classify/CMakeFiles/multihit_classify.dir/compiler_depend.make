# Empty compiler generated dependencies file for multihit_classify.
# This may be replaced when dependencies are built.
