file(REMOVE_RECURSE
  "CMakeFiles/multihit_classify.dir/classifier.cpp.o"
  "CMakeFiles/multihit_classify.dir/classifier.cpp.o.d"
  "libmultihit_classify.a"
  "libmultihit_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multihit_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
