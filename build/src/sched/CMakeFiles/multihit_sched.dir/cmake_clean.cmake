file(REMOVE_RECURSE
  "CMakeFiles/multihit_sched.dir/divergence.cpp.o"
  "CMakeFiles/multihit_sched.dir/divergence.cpp.o.d"
  "CMakeFiles/multihit_sched.dir/memaware.cpp.o"
  "CMakeFiles/multihit_sched.dir/memaware.cpp.o.d"
  "CMakeFiles/multihit_sched.dir/schedule.cpp.o"
  "CMakeFiles/multihit_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/multihit_sched.dir/workload.cpp.o"
  "CMakeFiles/multihit_sched.dir/workload.cpp.o.d"
  "libmultihit_sched.a"
  "libmultihit_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multihit_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
