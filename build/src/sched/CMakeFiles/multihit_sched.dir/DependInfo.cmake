
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/divergence.cpp" "src/sched/CMakeFiles/multihit_sched.dir/divergence.cpp.o" "gcc" "src/sched/CMakeFiles/multihit_sched.dir/divergence.cpp.o.d"
  "/root/repo/src/sched/memaware.cpp" "src/sched/CMakeFiles/multihit_sched.dir/memaware.cpp.o" "gcc" "src/sched/CMakeFiles/multihit_sched.dir/memaware.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/multihit_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/multihit_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/workload.cpp" "src/sched/CMakeFiles/multihit_sched.dir/workload.cpp.o" "gcc" "src/sched/CMakeFiles/multihit_sched.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/multihit_util.dir/DependInfo.cmake"
  "/root/repo/build/src/combinat/CMakeFiles/multihit_combinat.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/multihit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bitmat/CMakeFiles/multihit_bitmat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
