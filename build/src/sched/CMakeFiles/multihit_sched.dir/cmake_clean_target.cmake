file(REMOVE_RECURSE
  "libmultihit_sched.a"
)
