# Empty compiler generated dependencies file for multihit_sched.
# This may be replaced when dependencies are built.
