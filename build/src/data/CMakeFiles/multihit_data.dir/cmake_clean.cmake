file(REMOVE_RECURSE
  "CMakeFiles/multihit_data.dir/dataset.cpp.o"
  "CMakeFiles/multihit_data.dir/dataset.cpp.o.d"
  "CMakeFiles/multihit_data.dir/generator.cpp.o"
  "CMakeFiles/multihit_data.dir/generator.cpp.o.d"
  "CMakeFiles/multihit_data.dir/io.cpp.o"
  "CMakeFiles/multihit_data.dir/io.cpp.o.d"
  "CMakeFiles/multihit_data.dir/maf.cpp.o"
  "CMakeFiles/multihit_data.dir/maf.cpp.o.d"
  "CMakeFiles/multihit_data.dir/maf_io.cpp.o"
  "CMakeFiles/multihit_data.dir/maf_io.cpp.o.d"
  "CMakeFiles/multihit_data.dir/mutation_level.cpp.o"
  "CMakeFiles/multihit_data.dir/mutation_level.cpp.o.d"
  "CMakeFiles/multihit_data.dir/registry.cpp.o"
  "CMakeFiles/multihit_data.dir/registry.cpp.o.d"
  "libmultihit_data.a"
  "libmultihit_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multihit_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
