# Empty dependencies file for multihit_data.
# This may be replaced when dependencies are built.
