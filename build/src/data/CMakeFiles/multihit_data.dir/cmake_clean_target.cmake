file(REMOVE_RECURSE
  "libmultihit_data.a"
)
