
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/multihit_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/multihit_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/generator.cpp" "src/data/CMakeFiles/multihit_data.dir/generator.cpp.o" "gcc" "src/data/CMakeFiles/multihit_data.dir/generator.cpp.o.d"
  "/root/repo/src/data/io.cpp" "src/data/CMakeFiles/multihit_data.dir/io.cpp.o" "gcc" "src/data/CMakeFiles/multihit_data.dir/io.cpp.o.d"
  "/root/repo/src/data/maf.cpp" "src/data/CMakeFiles/multihit_data.dir/maf.cpp.o" "gcc" "src/data/CMakeFiles/multihit_data.dir/maf.cpp.o.d"
  "/root/repo/src/data/maf_io.cpp" "src/data/CMakeFiles/multihit_data.dir/maf_io.cpp.o" "gcc" "src/data/CMakeFiles/multihit_data.dir/maf_io.cpp.o.d"
  "/root/repo/src/data/mutation_level.cpp" "src/data/CMakeFiles/multihit_data.dir/mutation_level.cpp.o" "gcc" "src/data/CMakeFiles/multihit_data.dir/mutation_level.cpp.o.d"
  "/root/repo/src/data/registry.cpp" "src/data/CMakeFiles/multihit_data.dir/registry.cpp.o" "gcc" "src/data/CMakeFiles/multihit_data.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/multihit_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bitmat/CMakeFiles/multihit_bitmat.dir/DependInfo.cmake"
  "/root/repo/build/src/combinat/CMakeFiles/multihit_combinat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
