file(REMOVE_RECURSE
  "libmultihit_combinat.a"
)
