# Empty compiler generated dependencies file for multihit_combinat.
# This may be replaced when dependencies are built.
