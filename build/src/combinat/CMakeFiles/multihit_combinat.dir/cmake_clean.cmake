file(REMOVE_RECURSE
  "CMakeFiles/multihit_combinat.dir/binomial.cpp.o"
  "CMakeFiles/multihit_combinat.dir/binomial.cpp.o.d"
  "CMakeFiles/multihit_combinat.dir/linearize.cpp.o"
  "CMakeFiles/multihit_combinat.dir/linearize.cpp.o.d"
  "CMakeFiles/multihit_combinat.dir/unrank.cpp.o"
  "CMakeFiles/multihit_combinat.dir/unrank.cpp.o.d"
  "libmultihit_combinat.a"
  "libmultihit_combinat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multihit_combinat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
