
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/combinat/binomial.cpp" "src/combinat/CMakeFiles/multihit_combinat.dir/binomial.cpp.o" "gcc" "src/combinat/CMakeFiles/multihit_combinat.dir/binomial.cpp.o.d"
  "/root/repo/src/combinat/linearize.cpp" "src/combinat/CMakeFiles/multihit_combinat.dir/linearize.cpp.o" "gcc" "src/combinat/CMakeFiles/multihit_combinat.dir/linearize.cpp.o.d"
  "/root/repo/src/combinat/unrank.cpp" "src/combinat/CMakeFiles/multihit_combinat.dir/unrank.cpp.o" "gcc" "src/combinat/CMakeFiles/multihit_combinat.dir/unrank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/multihit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
