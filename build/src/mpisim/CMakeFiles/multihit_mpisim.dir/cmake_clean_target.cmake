file(REMOVE_RECURSE
  "libmultihit_mpisim.a"
)
