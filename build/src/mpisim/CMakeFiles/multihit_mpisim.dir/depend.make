# Empty dependencies file for multihit_mpisim.
# This may be replaced when dependencies are built.
