file(REMOVE_RECURSE
  "CMakeFiles/multihit_mpisim.dir/comm.cpp.o"
  "CMakeFiles/multihit_mpisim.dir/comm.cpp.o.d"
  "libmultihit_mpisim.a"
  "libmultihit_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multihit_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
