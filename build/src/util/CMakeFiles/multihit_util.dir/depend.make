# Empty dependencies file for multihit_util.
# This may be replaced when dependencies are built.
