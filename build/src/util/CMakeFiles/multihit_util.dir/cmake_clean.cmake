file(REMOVE_RECURSE
  "CMakeFiles/multihit_util.dir/log.cpp.o"
  "CMakeFiles/multihit_util.dir/log.cpp.o.d"
  "CMakeFiles/multihit_util.dir/rng.cpp.o"
  "CMakeFiles/multihit_util.dir/rng.cpp.o.d"
  "CMakeFiles/multihit_util.dir/stats.cpp.o"
  "CMakeFiles/multihit_util.dir/stats.cpp.o.d"
  "CMakeFiles/multihit_util.dir/table.cpp.o"
  "CMakeFiles/multihit_util.dir/table.cpp.o.d"
  "libmultihit_util.a"
  "libmultihit_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multihit_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
