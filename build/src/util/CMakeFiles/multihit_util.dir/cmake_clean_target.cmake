file(REMOVE_RECURSE
  "libmultihit_util.a"
)
