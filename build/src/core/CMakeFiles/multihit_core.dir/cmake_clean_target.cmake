file(REMOVE_RECURSE
  "libmultihit_core.a"
)
