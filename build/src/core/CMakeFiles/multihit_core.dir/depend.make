# Empty dependencies file for multihit_core.
# This may be replaced when dependencies are built.
