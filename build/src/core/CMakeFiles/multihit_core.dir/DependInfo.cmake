
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkpoint.cpp" "src/core/CMakeFiles/multihit_core.dir/checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/multihit_core.dir/checkpoint.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/multihit_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/multihit_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/schemes.cpp" "src/core/CMakeFiles/multihit_core.dir/schemes.cpp.o" "gcc" "src/core/CMakeFiles/multihit_core.dir/schemes.cpp.o.d"
  "/root/repo/src/core/schemes25.cpp" "src/core/CMakeFiles/multihit_core.dir/schemes25.cpp.o" "gcc" "src/core/CMakeFiles/multihit_core.dir/schemes25.cpp.o.d"
  "/root/repo/src/core/serial.cpp" "src/core/CMakeFiles/multihit_core.dir/serial.cpp.o" "gcc" "src/core/CMakeFiles/multihit_core.dir/serial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/multihit_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bitmat/CMakeFiles/multihit_bitmat.dir/DependInfo.cmake"
  "/root/repo/build/src/combinat/CMakeFiles/multihit_combinat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
