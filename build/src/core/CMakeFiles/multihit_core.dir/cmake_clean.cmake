file(REMOVE_RECURSE
  "CMakeFiles/multihit_core.dir/checkpoint.cpp.o"
  "CMakeFiles/multihit_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/multihit_core.dir/engine.cpp.o"
  "CMakeFiles/multihit_core.dir/engine.cpp.o.d"
  "CMakeFiles/multihit_core.dir/schemes.cpp.o"
  "CMakeFiles/multihit_core.dir/schemes.cpp.o.d"
  "CMakeFiles/multihit_core.dir/schemes25.cpp.o"
  "CMakeFiles/multihit_core.dir/schemes25.cpp.o.d"
  "CMakeFiles/multihit_core.dir/serial.cpp.o"
  "CMakeFiles/multihit_core.dir/serial.cpp.o.d"
  "libmultihit_core.a"
  "libmultihit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multihit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
