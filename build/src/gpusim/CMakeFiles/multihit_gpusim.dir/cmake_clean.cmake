file(REMOVE_RECURSE
  "CMakeFiles/multihit_gpusim.dir/analytic.cpp.o"
  "CMakeFiles/multihit_gpusim.dir/analytic.cpp.o.d"
  "CMakeFiles/multihit_gpusim.dir/device.cpp.o"
  "CMakeFiles/multihit_gpusim.dir/device.cpp.o.d"
  "CMakeFiles/multihit_gpusim.dir/perfmodel.cpp.o"
  "CMakeFiles/multihit_gpusim.dir/perfmodel.cpp.o.d"
  "CMakeFiles/multihit_gpusim.dir/smsim.cpp.o"
  "CMakeFiles/multihit_gpusim.dir/smsim.cpp.o.d"
  "libmultihit_gpusim.a"
  "libmultihit_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multihit_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
