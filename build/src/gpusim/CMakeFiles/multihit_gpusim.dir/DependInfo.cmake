
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/analytic.cpp" "src/gpusim/CMakeFiles/multihit_gpusim.dir/analytic.cpp.o" "gcc" "src/gpusim/CMakeFiles/multihit_gpusim.dir/analytic.cpp.o.d"
  "/root/repo/src/gpusim/device.cpp" "src/gpusim/CMakeFiles/multihit_gpusim.dir/device.cpp.o" "gcc" "src/gpusim/CMakeFiles/multihit_gpusim.dir/device.cpp.o.d"
  "/root/repo/src/gpusim/perfmodel.cpp" "src/gpusim/CMakeFiles/multihit_gpusim.dir/perfmodel.cpp.o" "gcc" "src/gpusim/CMakeFiles/multihit_gpusim.dir/perfmodel.cpp.o.d"
  "/root/repo/src/gpusim/smsim.cpp" "src/gpusim/CMakeFiles/multihit_gpusim.dir/smsim.cpp.o" "gcc" "src/gpusim/CMakeFiles/multihit_gpusim.dir/smsim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/multihit_util.dir/DependInfo.cmake"
  "/root/repo/build/src/combinat/CMakeFiles/multihit_combinat.dir/DependInfo.cmake"
  "/root/repo/build/src/bitmat/CMakeFiles/multihit_bitmat.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/multihit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/multihit_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
