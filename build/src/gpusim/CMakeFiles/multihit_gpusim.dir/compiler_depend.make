# Empty compiler generated dependencies file for multihit_gpusim.
# This may be replaced when dependencies are built.
