file(REMOVE_RECURSE
  "libmultihit_gpusim.a"
)
