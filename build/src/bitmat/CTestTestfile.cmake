# CMake generated Testfile for 
# Source directory: /root/repo/src/bitmat
# Build directory: /root/repo/build/src/bitmat
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
