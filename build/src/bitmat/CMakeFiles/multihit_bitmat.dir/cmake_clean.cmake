file(REMOVE_RECURSE
  "CMakeFiles/multihit_bitmat.dir/bitmatrix.cpp.o"
  "CMakeFiles/multihit_bitmat.dir/bitmatrix.cpp.o.d"
  "CMakeFiles/multihit_bitmat.dir/bitops.cpp.o"
  "CMakeFiles/multihit_bitmat.dir/bitops.cpp.o.d"
  "libmultihit_bitmat.a"
  "libmultihit_bitmat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multihit_bitmat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
