file(REMOVE_RECURSE
  "libmultihit_bitmat.a"
)
