# Empty compiler generated dependencies file for multihit_bitmat.
# This may be replaced when dependencies are built.
