file(REMOVE_RECURSE
  "CMakeFiles/multihit_cluster.dir/distributed.cpp.o"
  "CMakeFiles/multihit_cluster.dir/distributed.cpp.o.d"
  "CMakeFiles/multihit_cluster.dir/model.cpp.o"
  "CMakeFiles/multihit_cluster.dir/model.cpp.o.d"
  "CMakeFiles/multihit_cluster.dir/scaling.cpp.o"
  "CMakeFiles/multihit_cluster.dir/scaling.cpp.o.d"
  "CMakeFiles/multihit_cluster.dir/summit.cpp.o"
  "CMakeFiles/multihit_cluster.dir/summit.cpp.o.d"
  "libmultihit_cluster.a"
  "libmultihit_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multihit_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
