# Empty compiler generated dependencies file for multihit_cluster.
# This may be replaced when dependencies are built.
