file(REMOVE_RECURSE
  "libmultihit_cluster.a"
)
