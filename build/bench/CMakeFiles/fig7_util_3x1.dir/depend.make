# Empty dependencies file for fig7_util_3x1.
# This may be replaced when dependencies are built.
