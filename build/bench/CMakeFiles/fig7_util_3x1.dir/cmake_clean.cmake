file(REMOVE_RECURSE
  "CMakeFiles/fig7_util_3x1.dir/fig7_util_3x1.cpp.o"
  "CMakeFiles/fig7_util_3x1.dir/fig7_util_3x1.cpp.o.d"
  "fig7_util_3x1"
  "fig7_util_3x1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_util_3x1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
