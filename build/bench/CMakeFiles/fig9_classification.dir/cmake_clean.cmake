file(REMOVE_RECURSE
  "CMakeFiles/fig9_classification.dir/fig9_classification.cpp.o"
  "CMakeFiles/fig9_classification.dir/fig9_classification.cpp.o.d"
  "fig9_classification"
  "fig9_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
