file(REMOVE_RECURSE
  "CMakeFiles/fig2_thread_workload.dir/fig2_thread_workload.cpp.o"
  "CMakeFiles/fig2_thread_workload.dir/fig2_thread_workload.cpp.o.d"
  "fig2_thread_workload"
  "fig2_thread_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_thread_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
