# Empty dependencies file for fig6_util_2x2.
# This may be replaced when dependencies are built.
