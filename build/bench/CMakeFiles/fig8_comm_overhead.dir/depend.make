# Empty dependencies file for fig8_comm_overhead.
# This may be replaced when dependencies are built.
