file(REMOVE_RECURSE
  "CMakeFiles/tab_memaware.dir/tab_memaware.cpp.o"
  "CMakeFiles/tab_memaware.dir/tab_memaware.cpp.o.d"
  "tab_memaware"
  "tab_memaware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_memaware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
