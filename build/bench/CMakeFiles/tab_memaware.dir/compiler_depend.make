# Empty compiler generated dependencies file for tab_memaware.
# This may be replaced when dependencies are built.
