# Empty compiler generated dependencies file for tab_mutation_level.
# This may be replaced when dependencies are built.
