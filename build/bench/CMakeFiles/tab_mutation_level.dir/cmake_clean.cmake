file(REMOVE_RECURSE
  "CMakeFiles/tab_mutation_level.dir/tab_mutation_level.cpp.o"
  "CMakeFiles/tab_mutation_level.dir/tab_mutation_level.cpp.o.d"
  "tab_mutation_level"
  "tab_mutation_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_mutation_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
