# Empty compiler generated dependencies file for tab_ed_vs_ea.
# This may be replaced when dependencies are built.
