file(REMOVE_RECURSE
  "CMakeFiles/tab_ed_vs_ea.dir/tab_ed_vs_ea.cpp.o"
  "CMakeFiles/tab_ed_vs_ea.dir/tab_ed_vs_ea.cpp.o.d"
  "tab_ed_vs_ea"
  "tab_ed_vs_ea.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_ed_vs_ea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
