file(REMOVE_RECURSE
  "CMakeFiles/fig10_mutation_positions.dir/fig10_mutation_positions.cpp.o"
  "CMakeFiles/fig10_mutation_positions.dir/fig10_mutation_positions.cpp.o.d"
  "fig10_mutation_positions"
  "fig10_mutation_positions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_mutation_positions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
