# Empty dependencies file for fig10_mutation_positions.
# This may be replaced when dependencies are built.
