file(REMOVE_RECURSE
  "CMakeFiles/fig3_gpu_workload.dir/fig3_gpu_workload.cpp.o"
  "CMakeFiles/fig3_gpu_workload.dir/fig3_gpu_workload.cpp.o.d"
  "fig3_gpu_workload"
  "fig3_gpu_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_gpu_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
