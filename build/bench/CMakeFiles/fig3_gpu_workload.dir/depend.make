# Empty dependencies file for fig3_gpu_workload.
# This may be replaced when dependencies are built.
