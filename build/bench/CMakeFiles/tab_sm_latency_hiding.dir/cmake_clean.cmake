file(REMOVE_RECURSE
  "CMakeFiles/tab_sm_latency_hiding.dir/tab_sm_latency_hiding.cpp.o"
  "CMakeFiles/tab_sm_latency_hiding.dir/tab_sm_latency_hiding.cpp.o.d"
  "tab_sm_latency_hiding"
  "tab_sm_latency_hiding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_sm_latency_hiding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
