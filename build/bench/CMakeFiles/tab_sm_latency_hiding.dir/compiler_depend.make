# Empty compiler generated dependencies file for tab_sm_latency_hiding.
# This may be replaced when dependencies are built.
