# Empty dependencies file for tab_divergence.
# This may be replaced when dependencies are built.
