file(REMOVE_RECURSE
  "CMakeFiles/tab_divergence.dir/tab_divergence.cpp.o"
  "CMakeFiles/tab_divergence.dir/tab_divergence.cpp.o.d"
  "tab_divergence"
  "tab_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
