# Empty dependencies file for tab_speedup.
# This may be replaced when dependencies are built.
