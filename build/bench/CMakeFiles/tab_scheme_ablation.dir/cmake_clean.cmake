file(REMOVE_RECURSE
  "CMakeFiles/tab_scheme_ablation.dir/tab_scheme_ablation.cpp.o"
  "CMakeFiles/tab_scheme_ablation.dir/tab_scheme_ablation.cpp.o.d"
  "tab_scheme_ablation"
  "tab_scheme_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_scheme_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
