# Empty dependencies file for tab_scheme_ablation.
# This may be replaced when dependencies are built.
