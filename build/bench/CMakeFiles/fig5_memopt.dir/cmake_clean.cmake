file(REMOVE_RECURSE
  "CMakeFiles/fig5_memopt.dir/fig5_memopt.cpp.o"
  "CMakeFiles/fig5_memopt.dir/fig5_memopt.cpp.o.d"
  "fig5_memopt"
  "fig5_memopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_memopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
