# Empty compiler generated dependencies file for fig5_memopt.
# This may be replaced when dependencies are built.
