# Empty dependencies file for cancer_panel.
# This may be replaced when dependencies are built.
