file(REMOVE_RECURSE
  "CMakeFiles/cancer_panel.dir/cancer_panel.cpp.o"
  "CMakeFiles/cancer_panel.dir/cancer_panel.cpp.o.d"
  "cancer_panel"
  "cancer_panel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cancer_panel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
