# Empty dependencies file for brca_scaleout.
# This may be replaced when dependencies are built.
