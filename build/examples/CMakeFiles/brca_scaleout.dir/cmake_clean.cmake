file(REMOVE_RECURSE
  "CMakeFiles/brca_scaleout.dir/brca_scaleout.cpp.o"
  "CMakeFiles/brca_scaleout.dir/brca_scaleout.cpp.o.d"
  "brca_scaleout"
  "brca_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brca_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
