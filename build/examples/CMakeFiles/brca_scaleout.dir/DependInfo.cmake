
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/brca_scaleout.cpp" "examples/CMakeFiles/brca_scaleout.dir/brca_scaleout.cpp.o" "gcc" "examples/CMakeFiles/brca_scaleout.dir/brca_scaleout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/multihit_util.dir/DependInfo.cmake"
  "/root/repo/build/src/combinat/CMakeFiles/multihit_combinat.dir/DependInfo.cmake"
  "/root/repo/build/src/bitmat/CMakeFiles/multihit_bitmat.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/multihit_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/multihit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/multihit_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/multihit_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/multihit_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/multihit_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/multihit_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
