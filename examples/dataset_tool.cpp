// Dataset tool: generate, inspect, split, and solve datasets from the
// command line using the library's text format (data/io.hpp).
//
//   $ dataset_tool generate <path> [--genes N] [--tumor N] [--normal N]
//                                  [--hits N] [--combos N] [--seed N]
//   $ dataset_tool info <path>
//   $ dataset_tool split <path> <train-out> <test-out> [--seed N]
//   $ dataset_tool solve <path> [--hits N] [--checkpoint out.chk --iters K]
//   $ dataset_tool resume <path> <checkpoint> [--iters K]
//
// `solve` runs the greedy WSC engine with the deployed kernel for the hit
// count (1x1/2x1/3x1/4x1 for h = 2/3/4/5, serial otherwise). With
// --checkpoint it stops after --iters iterations and persists resumable
// state — the workflow Summit's allocation time limit forces; `resume`
// continues from such a file.

#include <cstring>
#include <iostream>
#include <string>

#include "core/checkpoint.hpp"
#include "core/engine.hpp"
#include "core/schemes.hpp"
#include "data/generator.hpp"
#include "data/io.hpp"
#include "util/log.hpp"

namespace {

using namespace multihit;

std::uint64_t flag_value(int argc, char** argv, const char* flag, std::uint64_t fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::stoull(argv[i + 1]);
  }
  return fallback;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 3) return 1;
  SyntheticSpec spec;
  spec.genes = static_cast<std::uint32_t>(flag_value(argc, argv, "--genes", 60));
  spec.tumor_samples = static_cast<std::uint32_t>(flag_value(argc, argv, "--tumor", 100));
  spec.normal_samples = static_cast<std::uint32_t>(flag_value(argc, argv, "--normal", 80));
  spec.hits = static_cast<std::uint32_t>(flag_value(argc, argv, "--hits", 3));
  spec.num_combinations = static_cast<std::uint32_t>(flag_value(argc, argv, "--combos", 3));
  spec.seed = flag_value(argc, argv, "--seed", 42);
  Dataset data = generate_dataset(spec);
  data.name = argv[2];
  save_dataset(argv[2], data);
  std::cout << "wrote " << argv[2] << " (" << data.genes() << " genes, "
            << data.tumor_samples() << "+" << data.normal_samples() << " samples, "
            << data.planted.size() << " planted combinations)\n";
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 3) return 1;
  const Dataset data = load_dataset(argv[2]);
  const double tumor_density =
      data.tumor_samples()
          ? static_cast<double>(data.tumor.total_set_bits()) /
                (static_cast<double>(data.genes()) * data.tumor_samples())
          : 0.0;
  std::cout << "name:            " << data.name << "\n"
            << "genes:           " << data.genes() << "\n"
            << "tumor samples:   " << data.tumor_samples() << "\n"
            << "normal samples:  " << data.normal_samples() << "\n"
            << "tumor density:   " << tumor_density << "\n"
            << "planted combos:  " << data.planted.size() << "\n";
  return 0;
}

int cmd_split(int argc, char** argv) {
  if (argc < 5) return 1;
  const Dataset data = load_dataset(argv[2]);
  const auto split = split_dataset(data, 0.75, flag_value(argc, argv, "--seed", 7));
  save_dataset(argv[3], split.train);
  save_dataset(argv[4], split.test);
  std::cout << "train: " << split.train.tumor_samples() << "+"
            << split.train.normal_samples() << " samples -> " << argv[3] << "\n"
            << "test:  " << split.test.tumor_samples() << "+" << split.test.normal_samples()
            << " samples -> " << argv[4] << "\n";
  return 0;
}

const char* flag_string(int argc, char** argv, const char* flag) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

void print_progress(const GreedyResult& result) {
  std::cout << result.iterations.size() << " combinations (" << result.uncovered_tumor
            << " tumor samples uncovered):\n";
  for (const auto& it : result.iterations) {
    std::cout << "  {";
    for (std::size_t i = 0; i < it.genes.size(); ++i) {
      std::cout << (i ? ", " : "") << "g" << it.genes[i];
    }
    std::cout << "}  F=" << it.f << "  TP=" << it.tp << "  TN=" << it.tn << "\n";
  }
}

int cmd_solve(int argc, char** argv) {
  if (argc < 3) return 1;
  const Dataset data = load_dataset(argv[2]);
  const auto hits = static_cast<std::uint32_t>(flag_value(argc, argv, "--hits", 3));
  const Evaluator evaluator = make_kernel_evaluator(hits);

  EngineConfig config;
  config.hits = hits;

  if (const char* checkpoint_path = flag_string(argc, argv, "--checkpoint")) {
    const auto iters = static_cast<std::uint32_t>(flag_value(argc, argv, "--iters", 1));
    const CheckpointState state =
        run_greedy_checkpointed(data.tumor, data.normal, config, evaluator, iters);
    save_checkpoint(checkpoint_path, state);
    print_progress(state.progress);
    std::cout << "checkpoint written to " << checkpoint_path << " ("
              << (state.progress.uncovered_tumor > 0 ? "resumable" : "complete") << ")\n";
    return 0;
  }

  print_progress(run_greedy(data.tumor, data.normal, config, evaluator));
  return 0;
}

int cmd_resume(int argc, char** argv) {
  if (argc < 4) return 1;
  const Dataset data = load_dataset(argv[2]);
  CheckpointState state = load_checkpoint(argv[3]);
  const auto iters = static_cast<std::uint32_t>(flag_value(argc, argv, "--iters", 0));
  resume_greedy(state, data.normal, make_kernel_evaluator(state.hits), iters);
  save_checkpoint(argv[3], state);
  print_progress(state.progress);
  std::cout << "checkpoint updated ("
            << (state.progress.uncovered_tumor > 0 ? "resumable" : "complete") << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string usage =
      "usage: dataset_tool <generate|info|split|solve|resume> <path> [args]\n"
      "  generate <path> [--genes N] [--tumor N] [--normal N] [--hits N] "
      "[--combos N] [--seed N]\n"
      "  info <path>\n"
      "  split <path> <train-out> <test-out> [--seed N]\n"
      "  solve <path> [--hits N] [--checkpoint out.chk --iters K]\n"
      "  resume <path> <checkpoint> [--iters K]\n"
      "  (any command also accepts --log-level <" +
      std::string(multihit::log::level_names()) + ">)\n";
  if (argc < 2) {
    std::cerr << usage;
    return 1;
  }
  if (const char* name = flag_string(argc, argv, "--log-level")) {
    const auto level = multihit::log::parse_level(name);
    if (!level) {
      std::cerr << "unknown --log-level '" << name << "' (expected one of: "
                << multihit::log::level_names() << ")\n";
      return 1;
    }
    multihit::log::set_level(*level);
  }
  try {
    const std::string cmd = argv[1];
    int rc = 1;
    if (cmd == "generate") rc = cmd_generate(argc, argv);
    else if (cmd == "info") rc = cmd_info(argc, argv);
    else if (cmd == "split") rc = cmd_split(argc, argv);
    else if (cmd == "solve") rc = cmd_solve(argc, argv);
    else if (cmd == "resume") rc = cmd_resume(argc, argv);
    if (rc != 0) std::cerr << usage;
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
