// Quickstart: generate a small synthetic cohort with planted 3-hit driver
// combinations, run the greedy weighted-set-cover engine, and check that the
// planted combinations are recovered.
//
//   $ ./examples/quickstart
//
// This is the 60-second tour of the public API:
//   SyntheticSpec / generate_dataset  — data substrate
//   run_greedy + make_serial_evaluator — the paper's core algorithm
//   GreedyResult                       — selected combinations + coverage

#include <algorithm>
#include <iostream>

#include "core/engine.hpp"
#include "data/generator.hpp"

int main() {
  using namespace multihit;

  // A cohort of 100 tumor and 80 normal samples over 50 genes; every tumor
  // sample carries one of three planted 3-gene driver combinations, plus 2%
  // background passenger mutations everywhere.
  SyntheticSpec spec;
  spec.genes = 50;
  spec.tumor_samples = 100;
  spec.normal_samples = 80;
  spec.hits = 3;
  spec.num_combinations = 3;
  spec.background_rate = 0.02;
  spec.seed = 1;
  const Dataset data = generate_dataset(spec);

  std::cout << "Cohort: " << data.genes() << " genes, " << data.tumor_samples()
            << " tumor + " << data.normal_samples() << " normal samples\n";
  std::cout << "Planted driver combinations:\n";
  for (const auto& combo : data.planted) {
    std::cout << "  {";
    for (std::size_t i = 0; i < combo.size(); ++i) {
      std::cout << (i ? ", " : "") << "g" << combo[i];
    }
    std::cout << "}\n";
  }

  // Greedy weighted set cover: repeatedly pick the combination with maximal
  // F = (0.1*TP + TN) / (Nt + Nn), then exclude the covered tumor samples.
  EngineConfig config;
  config.hits = 3;
  const GreedyResult result =
      run_greedy(data.tumor, data.normal, config, make_serial_evaluator(3));

  std::cout << "\nGreedy selections (" << result.iterations.size() << " combinations, "
            << result.uncovered_tumor << " tumor samples left uncovered):\n";
  for (const auto& it : result.iterations) {
    std::cout << "  {";
    for (std::size_t i = 0; i < it.genes.size(); ++i) {
      std::cout << (i ? ", " : "") << "g" << it.genes[i];
    }
    const bool planted =
        std::find(data.planted.begin(), data.planted.end(), it.genes) != data.planted.end();
    std::cout << "}  F=" << it.f << "  covers " << it.tp << " tumor samples"
              << (planted ? "  [planted driver]" : "") << "\n";
  }

  std::size_t recovered = 0;
  const auto selected = result.combinations();
  for (const auto& truth : data.planted) {
    if (std::find(selected.begin(), selected.end(), truth) != selected.end()) ++recovered;
  }
  std::cout << "\nRecovered " << recovered << "/" << data.planted.size()
            << " planted combinations.\n";
  return recovered == data.planted.size() ? 0 : 1;
}
