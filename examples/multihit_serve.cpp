// multihit-serve: replay a seeded multi-tenant request trace through the
// deterministic job service (src/serve).
//
//   $ ./examples/multihit-serve [--mix open|closed|bursty|diurnal]
//                               [--jobs N] [--seed S] [--gpus G]
//                               [--concurrent N] [--queue-cap N] [--quota N]
//                               [--invalidate-rate F] [--no-cache]
//                               [--no-verify] [--out FILE]
//                               [--trace-out FILE] [--metrics-out FILE]
//                               [--slo-spec FILE] [--slo-out FILE]
//                               [--scenario none|overload|starvation|burn|thrash]
//                               [--manifest-out FILE] [--artifacts-dir DIR]
//                               [--bench]
//
// The trace generator (src/serve/trace.cpp) produces a fully seeded request
// sequence — tenants, priorities, cancer types, arrival times — in one of
// four arrival mixes: open (Poisson), closed (a fixed client population with
// think times), bursty (thundering herds at period marks), diurnal
// (sinusoid-modulated rate). The JobService replays it on the simulated
// clock: admission control against a bounded queue and per-tenant quotas,
// priority scheduling with iteration-boundary preemption, the fleet split
// across concurrent jobs by the two-level equi-area scheduler, and
// per-cancer-type matrix/result caching with explicit invalidation.
//
// Everything is deterministic. Two runs with the same flags produce
// byte-identical --out/--trace-out/--metrics-out files, on ANY bitops
// backend (MULTIHIT_BITOPS=scalar|avx2|auto) — scripts/ci.sh pins this with
// cmp. Unless --no-verify, the driver also re-runs every completed job
// standalone (same dataset, same hit count, one job on the whole pipeline)
// and exits 1 if any served selections differ — multi-tenant time-sharing
// must never change an answer.
//
// --out writes the multihit.serve.v1 report (trace echo, per-job records
// with selections, aggregate + per-tenant latency stats); --bench writes
// BENCH_serve_latency.json (p50/p99 job latency, jobs/sec, makespan) for
// the scripts/bench_compare.py regression gate.
//
// --slo-spec loads per-tenant SLO objectives (obs::parse_slo grammar); the
// run is then evaluated against them in-process and --slo-out writes the
// multihit.slo.v1 report — byte-identical to an offline `obstool slo` replay
// of the saved --out document. With --bench, a BENCH_serve_slo.json record
// (per-tenant p99 attainment, worst burn rate) rides along. --scenario
// plants one serve pathology (see serve::apply_scenario) on top of the other
// flags, for detector-quality sweeps; violations never change this tool's
// exit status — the verdict is `obstool slo`'s job.
//
// --manifest-out writes a multihit.run.v1 manifest (obs/runinfo.hpp): the
// run configuration plus a digest inventory of every artifact the
// invocation emitted, the unit `obstool diff` compares. --artifacts-dir DIR
// is the one-flag spelling: it defaults --out/--trace-out/--metrics-out
// (and --slo-out when --slo-spec is given) to standard names under DIR and
// writes DIR/manifest.json.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bitmat/bitops.hpp"
#include "core/engine.hpp"
#include "data/registry.hpp"
#include "obs/bench.hpp"
#include "obs/recorder.hpp"
#include "obs/runinfo.hpp"
#include "obs/schema.hpp"
#include "serve/cache.hpp"
#include "serve/job.hpp"
#include "serve/service.hpp"

namespace {

using namespace multihit;
using namespace multihit::serve;

int usage() {
  std::cerr << "usage: multihit-serve [--mix open|closed|bursty|diurnal]\n"
               "                      [--jobs N] [--seed S] [--gpus G]\n"
               "                      [--concurrent N] [--queue-cap N] [--quota N]\n"
               "                      [--invalidate-rate F] [--no-cache] [--no-verify]\n"
               "                      [--out FILE] [--trace-out FILE]\n"
               "                      [--metrics-out FILE] [--slo-spec FILE]\n"
               "                      [--slo-out FILE]\n"
               "                      [--scenario none|overload|starvation|burn|thrash]\n"
               "                      [--manifest-out FILE] [--artifacts-dir DIR]\n"
               "                      [--bench]\n";
  return 2;
}

/// Re-runs one (cancer, hits) job standalone — the whole pipeline to
/// itself — and returns its selections. Memoized: the service's determinism
/// means every job on the same pair must produce the same answer anyway.
const std::vector<std::vector<std::uint32_t>>& standalone_selections(
    std::map<std::pair<std::string, std::uint32_t>, std::vector<std::vector<std::uint32_t>>>&
        memo,
    const std::string& cancer, std::uint32_t hits) {
  const auto key = std::make_pair(cancer, hits);
  const auto it = memo.find(key);
  if (it != memo.end()) return it->second;
  const auto type = find_cancer_type(cancer);
  const Dataset data = generate_dataset(CancerCache::serve_spec(*type));
  EngineConfig config;
  config.hits = hits;
  const GreedyResult result =
      run_greedy(data.tumor, data.normal, config, make_kernel_evaluator(hits));
  return memo.emplace(key, result.combinations()).first->second;
}

}  // namespace

int main(int argc, char** argv) {
  TraceSpec spec;
  ServiceOptions options;
  bool verify = true;
  bool bench = false;
  Scenario scenario = Scenario::kNone;
  std::string out_path;
  std::string trace_path;
  std::string metrics_path;
  std::string slo_path;
  std::string slo_out;
  std::string manifest_out;
  std::string artifacts_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::exit(usage());
      }
      return argv[++i];
    };
    if (arg == "--mix") {
      const auto mix = parse_mix(value());
      if (!mix) return usage();
      spec.mix = *mix;
    } else if (arg == "--jobs") {
      spec.jobs = static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--seed") {
      spec.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--gpus") {
      options.gpus = static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--concurrent") {
      options.max_concurrent = static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--queue-cap") {
      options.queue_capacity = static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--quota") {
      options.tenant_quota = static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--invalidate-rate") {
      spec.invalidate_rate = std::strtod(value(), nullptr);
    } else if (arg == "--no-cache") {
      options.result_cache = false;
    } else if (arg == "--no-verify") {
      verify = false;
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--trace-out") {
      trace_path = value();
    } else if (arg == "--metrics-out") {
      metrics_path = value();
    } else if (arg == "--slo-spec") {
      slo_path = value();
    } else if (arg == "--slo-out") {
      slo_out = value();
    } else if (arg == "--scenario") {
      const auto parsed = parse_scenario(value());
      if (!parsed) return usage();
      scenario = *parsed;
    } else if (arg == "--manifest-out") {
      manifest_out = value();
    } else if (arg == "--artifacts-dir") {
      artifacts_dir = value();
    } else if (arg == "--bench") {
      bench = true;
    } else {
      return usage();
    }
  }

  if (!slo_out.empty() && slo_path.empty()) return usage();
  if (!artifacts_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(artifacts_dir, ec);
    if (ec) {
      std::fprintf(stderr, "multihit-serve: cannot create %s: %s\n",
                   artifacts_dir.c_str(), ec.message().c_str());
      return 2;
    }
    const auto standard = [&](const char* name) {
      return (std::filesystem::path(artifacts_dir) / name).string();
    };
    if (out_path.empty()) out_path = standard("run.serve.json");
    if (trace_path.empty()) trace_path = standard("run.trace.json");
    if (metrics_path.empty()) metrics_path = standard("run.metrics.json");
    if (slo_out.empty() && !slo_path.empty()) slo_out = standard("run.slo.json");
    if (manifest_out.empty()) manifest_out = standard("manifest.json");
  }
  apply_scenario(spec, options, scenario);
  if (!slo_path.empty()) {
    std::ifstream in(slo_path);
    if (!in) {
      std::fprintf(stderr, "multihit-serve: cannot read %s\n", slo_path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    try {
      options.slo = obs::parse_slo(buffer.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "multihit-serve: %s\n", e.what());
      return 1;
    }
  }

  obs::Recorder recorder;
  if (!trace_path.empty() || !metrics_path.empty()) options.recorder = &recorder;

  const RequestTrace trace = generate_trace(spec);
  JobService service(options);
  const ServeResult result = service.replay(trace);

  std::printf("multihit-serve: mix=%s jobs=%u seed=%llu gpus=%u concurrent=%u\n",
              mix_name(trace.spec.mix), trace.spec.jobs,
              static_cast<unsigned long long>(trace.spec.seed), options.gpus,
              options.max_concurrent);
  std::printf("  requests=%zu rounds=%llu completed=%u rejected=%u cache_hits=%u\n",
              trace.requests.size(), static_cast<unsigned long long>(result.rounds),
              result.completed, result.rejected, result.cache_hits);
  std::printf("  makespan=%.3fs p50=%.3fs p99=%.3fs mean=%.3fs throughput=%.4f jobs/s\n",
              result.makespan, result.p50_latency, result.p99_latency, result.mean_latency,
              result.jobs_per_sec);
  for (const TenantStats& tenant : result.tenants) {
    std::printf("  tenant %-8s completed=%-3u rejected=%-3u p50=%.3fs p99=%.3fs\n",
                tenant.tenant.c_str(), tenant.completed, tenant.rejected, tenant.p50_latency,
                tenant.p99_latency);
  }
  std::printf("  cache: builds=%llu dataset_hits=%llu result_hits=%llu misses=%llu "
              "invalidations=%llu\n",
              static_cast<unsigned long long>(result.cache.dataset_builds),
              static_cast<unsigned long long>(result.cache.dataset_hits),
              static_cast<unsigned long long>(result.cache.result_hits),
              static_cast<unsigned long long>(result.cache.result_misses),
              static_cast<unsigned long long>(result.cache.invalidations));

  if (verify) {
    std::map<std::pair<std::string, std::uint32_t>, std::vector<std::vector<std::uint32_t>>>
        memo;
    std::uint32_t checked = 0;
    for (const JobRecord& job : result.jobs) {
      if (job.outcome != JobOutcome::kCompleted) continue;
      if (job.selections != standalone_selections(memo, job.cancer, job.hits)) {
        std::fprintf(stderr,
                     "multihit-serve: job %u (%s, %u-hit) selections differ from the "
                     "standalone run\n",
                     job.id, job.cancer.c_str(), job.hits);
        return 1;
      }
      ++checked;
    }
    std::printf("  verified: %u served results bit-identical to standalone runs\n", checked);
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "multihit-serve: cannot write %s\n", out_path.c_str());
      return 2;
    }
    out << serve_report(result, trace, options).dump() << '\n';
  }
  if (!trace_path.empty() && !recorder.write_trace(trace_path)) {
    std::fprintf(stderr, "multihit-serve: cannot write %s\n", trace_path.c_str());
    return 2;
  }
  if (!metrics_path.empty() && !recorder.write_metrics(metrics_path)) {
    std::fprintf(stderr, "multihit-serve: cannot write %s\n", metrics_path.c_str());
    return 2;
  }

  obs::SloReport slo;
  if (!options.slo.empty()) {
    slo = obs::evaluate_slo(slo_input(result), options.slo);
    std::printf("  slo: %u objective(s), %u violated, worst burn %.3fx, "
                "worst p99 attainment %.3f\n",
                slo.objectives, slo.violated, slo.worst_burn, slo.worst_p99_attainment);
    if (!slo_out.empty()) {
      std::ofstream out(slo_out);
      if (!out) {
        std::fprintf(stderr, "multihit-serve: cannot write %s\n", slo_out.c_str());
        return 2;
      }
      out << obs::slo_report_json(slo).dump() << '\n';
    }
  }

  if (!manifest_out.empty()) {
    obs::RunManifest manifest;
    manifest.driver = "multihit-serve";
    obs::set_config(manifest, "mix", mix_name(trace.spec.mix));
    obs::set_config(manifest, "jobs", std::to_string(trace.spec.jobs));
    obs::set_config(manifest, "seed", std::to_string(trace.spec.seed));
    obs::set_config(manifest, "gpus", std::to_string(options.gpus));
    obs::set_config(manifest, "concurrent", std::to_string(options.max_concurrent));
    obs::set_config(manifest, "queue_cap", std::to_string(options.queue_capacity));
    obs::set_config(manifest, "quota", std::to_string(options.tenant_quota));
    obs::set_config(manifest, "invalidate_rate", obs::json_number(spec.invalidate_rate));
    obs::set_config(manifest, "cache", options.result_cache ? "on" : "off");
    obs::set_config(manifest, "scenario", scenario_name(scenario));
    obs::set_config(manifest, "bitops_backend", backend_name(active_backend()));
    try {
      const auto add = [&](const char* name, std::string_view schema,
                           const std::string& path) {
        if (path.empty()) return;
        obs::add_artifact_from_file(manifest, name, std::string(schema), path);
        for (obs::RunArtifact& artifact : manifest.artifacts) {
          if (artifact.name == name) {
            artifact.path = obs::manifest_artifact_path(path, manifest_out);
          }
        }
      };
      add("serve", obs::kServeSchema, out_path);
      add("trace", obs::kChromeTraceTag, trace_path);
      add("metrics", obs::kMetricsSchema, metrics_path);
      add("slo", obs::kSloSchema, slo_out);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "multihit-serve: %s\n", e.what());
      return 1;
    }
    if (!obs::write_manifest(manifest, manifest_out)) {
      std::fprintf(stderr, "multihit-serve: cannot write %s\n", manifest_out.c_str());
      return 2;
    }
    std::printf("  run manifest written to %s\n", manifest_out.c_str());
  }

  if (bench && !options.slo.empty()) {
    obs::BenchReporter reporter("serve_slo");
    for (const obs::SloTenantReport& tenant : slo.tenants) {
      for (const obs::SloObjectiveResult& objective : tenant.objectives) {
        if (objective.objective.kind == obs::SloKind::kLatency &&
            objective.objective.percentile == 99.0) {
          reporter.series("p99_attainment_" + tenant.tenant, objective.attainment,
                          "fraction");
        }
      }
    }
    reporter.series("worst_burn", slo.worst_burn, "x");
    reporter.series("violated", static_cast<double>(slo.violated), "objectives");
    reporter.write();
    std::printf("  bench record: %s\n", reporter.path().c_str());
  }

  if (bench) {
    obs::BenchReporter reporter("serve_latency");
    reporter.series("p50_latency_s", result.p50_latency, "s");
    reporter.series("p99_latency_s", result.p99_latency, "s");
    reporter.series("mean_latency_s", result.mean_latency, "s");
    reporter.series("jobs_per_sec", result.jobs_per_sec, "jobs/s");
    reporter.series("makespan_s", result.makespan, "s");
    reporter.series("rounds", static_cast<double>(result.rounds), "rounds");
    reporter.write();
    std::printf("  bench record: %s\n", reporter.path().c_str());
  }
  return 0;
}
