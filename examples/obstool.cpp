// multihit-obstool: offline analysis of saved observability artifacts.
//
//   $ multihit-obstool analyze run.trace.json [run.metrics.json]
//                      [--report-out FILE] [--folded-out FILE] [--quiet]
//   $ multihit-obstool profile run.profile.json [run.trace.json] [run.metrics.json]
//                      [--report-out FILE] [--roofline-out FILE]
//                      [--heatmap-out FILE] [--summary] [--quiet]
//
// `analyze` loads a --trace-out Chrome trace (and optionally a --metrics-out
// snapshot), runs the trace analytics engine (critical path, per-phase
// imbalance, comm overhead — see src/obs/analyze.hpp), and prints the
// human-readable summary. `--report-out` writes the multihit.analysis.v1
// JSON report, `--folded-out` writes collapsed flamegraph stacks
// (flamegraph.pl / speedscope format).
//
// `profile` loads a --profile-out multihit.profile.v1 artifact and prints
// the per-kernel occupancy/stall/roofline rollups (`--summary` truncates the
// per-rank×iteration table). `--report-out` re-renders the normalized
// profile document, `--roofline-out`/`--heatmap-out` write CSV views of the
// roofline scatter and the per-GPU workload heatmap. When the run's trace
// and/or metrics files are also given, the profile is reconciled against
// them — per-rank kernel counts, counted DRAM bytes, and traced durations
// must agree exactly (see DESIGN.md §10) — and any mismatch exits 1.
//
// All outputs are deterministic: processing the same files twice produces
// byte-identical artifacts, which scripts/ci.sh uses as the determinism
// gate.
//
// Exit status: 0 on success, 1 on unreadable/malformed/ill-shaped inputs,
// unwritable outputs, or failed profile reconciliation.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/analyze.hpp"
#include "obs/profile.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr << "usage: multihit-obstool analyze TRACE.json [METRICS.json]\n"
               "                        [--report-out FILE] [--folded-out FILE] [--quiet]\n"
               "       multihit-obstool profile PROFILE.json [TRACE.json] [METRICS.json]\n"
               "                        [--report-out FILE] [--roofline-out FILE]\n"
               "                        [--heatmap-out FILE] [--summary] [--quiet]\n";
  std::exit(1);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

int run_analyze(int argc, char** argv) {
  using namespace multihit::obs;
  std::string trace_path, metrics_path, report_out, folded_out;
  bool quiet = false;
  for (int a = 2; a < argc; ++a) {
    const std::string arg = argv[a];
    const auto next = [&]() -> const char* {
      if (a + 1 >= argc) usage();
      return argv[++a];
    };
    if (arg == "--report-out") {
      report_out = next();
    } else if (arg == "--folded-out") {
      folded_out = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else if (metrics_path.empty()) {
      metrics_path = arg;
    } else {
      usage();
    }
  }
  if (trace_path.empty()) usage();

  try {
    const JsonValue trace_doc = JsonValue::parse(read_file(trace_path));
    const Tracer tracer = tracer_from_chrome(trace_doc);

    JsonValue metrics_doc;
    if (!metrics_path.empty()) metrics_doc = JsonValue::parse(read_file(metrics_path));

    const TraceAnalysis analysis = analyze_trace(tracer);
    const JsonValue report =
        analysis_report(analysis, metrics_path.empty() ? nullptr : &metrics_doc);

    if (!report_out.empty() && !write_file(report_out, report.dump() + "\n")) {
      std::cerr << "error: cannot write report to " << report_out << "\n";
      return 1;
    }
    if (!folded_out.empty() && !write_file(folded_out, folded_stacks(tracer))) {
      std::cerr << "error: cannot write folded stacks to " << folded_out << "\n";
      return 1;
    }
    if (!quiet) std::cout << analysis_text(analysis);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

int run_profile(int argc, char** argv) {
  using namespace multihit::obs;
  std::string profile_path, trace_path, metrics_path;
  std::string report_out, roofline_out, heatmap_out;
  bool summary = false, quiet = false;
  for (int a = 2; a < argc; ++a) {
    const std::string arg = argv[a];
    const auto next = [&]() -> const char* {
      if (a + 1 >= argc) usage();
      return argv[++a];
    };
    if (arg == "--report-out") {
      report_out = next();
    } else if (arg == "--roofline-out") {
      roofline_out = next();
    } else if (arg == "--heatmap-out") {
      heatmap_out = next();
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else if (profile_path.empty()) {
      profile_path = arg;
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else if (metrics_path.empty()) {
      metrics_path = arg;
    } else {
      usage();
    }
  }
  if (profile_path.empty()) usage();

  try {
    const JsonValue profile_doc = JsonValue::parse(read_file(profile_path));
    const Profiler profiler = profiler_from_json(profile_doc);

    Tracer tracer;
    if (!trace_path.empty()) {
      tracer = tracer_from_chrome(JsonValue::parse(read_file(trace_path)));
    }
    JsonValue metrics_doc;
    if (!metrics_path.empty()) metrics_doc = JsonValue::parse(read_file(metrics_path));

    if (!report_out.empty() &&
        !write_file(report_out, profile_report(profiler).dump() + "\n")) {
      std::cerr << "error: cannot write profile report to " << report_out << "\n";
      return 1;
    }
    if (!roofline_out.empty() && !write_file(roofline_out, roofline_csv(profiler))) {
      std::cerr << "error: cannot write roofline CSV to " << roofline_out << "\n";
      return 1;
    }
    if (!heatmap_out.empty() && !write_file(heatmap_out, heatmap_csv(profiler))) {
      std::cerr << "error: cannot write heatmap CSV to " << heatmap_out << "\n";
      return 1;
    }
    if (!quiet) std::cout << profile_text(profiler, summary);

    // Reconciliation: the profile, the trace, and the metrics snapshot
    // describe the same run — any disagreement is a telemetry bug.
    const std::vector<std::string> mismatches = profile_crosscheck(
        profiler, trace_path.empty() ? nullptr : &tracer,
        metrics_path.empty() ? nullptr : &metrics_doc);
    if (!mismatches.empty()) {
      for (const std::string& mismatch : mismatches) {
        std::cerr << "reconciliation mismatch: " << mismatch << "\n";
      }
      return 1;
    }
    if (!quiet && (!trace_path.empty() || !metrics_path.empty())) {
      std::cout << "reconciliation: profile totals agree with "
                << (!trace_path.empty() && !metrics_path.empty()
                        ? "trace spans and metrics counters"
                        : (!trace_path.empty() ? "trace spans" : "metrics counters"))
                << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage();
  const std::string command = argv[1];
  if (command == "analyze") return run_analyze(argc, argv);
  if (command == "profile") return run_profile(argc, argv);
  usage();
}
