// multihit-obstool: offline analysis of saved observability artifacts.
//
//   $ multihit-obstool analyze run.trace.json [run.metrics.json]
//                      [--report-out FILE] [--folded-out FILE] [--quiet]
//
// Loads a --trace-out Chrome trace (and optionally a --metrics-out snapshot),
// runs the trace analytics engine (critical path, per-phase imbalance, comm
// overhead — see src/obs/analyze.hpp), and prints the human-readable
// summary. `--report-out` writes the multihit.analysis.v1 JSON report,
// `--folded-out` writes collapsed flamegraph stacks (flamegraph.pl /
// speedscope format). All outputs are deterministic: analyzing the same
// files twice produces byte-identical artifacts, which scripts/ci.sh uses as
// the determinism gate.
//
// Exit status: 0 on success, 1 on unreadable/malformed/ill-shaped inputs or
// unwritable outputs.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/analyze.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr << "usage: multihit-obstool analyze TRACE.json [METRICS.json]\n"
               "                        [--report-out FILE] [--folded-out FILE] [--quiet]\n";
  std::exit(1);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace multihit::obs;
  if (argc < 3 || std::string(argv[1]) != "analyze") usage();

  std::string trace_path, metrics_path, report_out, folded_out;
  bool quiet = false;
  for (int a = 2; a < argc; ++a) {
    const std::string arg = argv[a];
    const auto next = [&]() -> const char* {
      if (a + 1 >= argc) usage();
      return argv[++a];
    };
    if (arg == "--report-out") {
      report_out = next();
    } else if (arg == "--folded-out") {
      folded_out = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else if (metrics_path.empty()) {
      metrics_path = arg;
    } else {
      usage();
    }
  }
  if (trace_path.empty()) usage();

  try {
    const JsonValue trace_doc = JsonValue::parse(read_file(trace_path));
    const Tracer tracer = tracer_from_chrome(trace_doc);

    JsonValue metrics_doc;
    if (!metrics_path.empty()) metrics_doc = JsonValue::parse(read_file(metrics_path));

    const TraceAnalysis analysis = analyze_trace(tracer);
    const JsonValue report =
        analysis_report(analysis, metrics_path.empty() ? nullptr : &metrics_doc);

    if (!report_out.empty() && !write_file(report_out, report.dump() + "\n")) {
      std::cerr << "error: cannot write report to " << report_out << "\n";
      return 1;
    }
    if (!folded_out.empty() && !write_file(folded_out, folded_stacks(tracer))) {
      std::cerr << "error: cannot write folded stacks to " << folded_out << "\n";
      return 1;
    }
    if (!quiet) std::cout << analysis_text(analysis);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
