// multihit-obstool: offline analysis of saved observability artifacts.
//
//   $ multihit-obstool analyze run.trace.json [run.metrics.json]
//                      [--report-out FILE] [--folded-out FILE] [--quiet]
//   $ multihit-obstool profile run.profile.json [run.trace.json] [run.metrics.json]
//                      [--report-out FILE] [--roofline-out FILE]
//                      [--heatmap-out FILE] [--summary] [--quiet]
//   $ multihit-obstool monitor run.trace.json [run.metrics.json]
//                      [--health-out FILE] [--rules FILE] [--sample-every S]
//                      [--window-samples N] [--slo-spec FILE]
//                      [--truth FILE] [--truth-window S] [--annotate-out FILE]
//                      [--summary] [--quiet]
//   $ multihit-obstool slo SERVE.json --spec FILE
//                      [--report-out FILE] [--summary] [--quiet]
//   $ multihit-obstool hostprof HOSTPROF.json
//                      [--report-out FILE] [--folded-out FILE]
//                      [--deterministic-out FILE] [--summary] [--quiet]
//   $ multihit-obstool diff A B [--tol FILE]
//                      [--report-out FILE] [--summary] [--quiet]
//
// `analyze` loads a --trace-out Chrome trace (and optionally a --metrics-out
// snapshot), runs the trace analytics engine (critical path, per-phase
// imbalance, comm overhead — see src/obs/analyze.hpp), and prints the
// human-readable summary. `--report-out` writes the multihit.analysis.v1
// JSON report, `--folded-out` writes collapsed flamegraph stacks
// (flamegraph.pl / speedscope format).
//
// `profile` loads a --profile-out multihit.profile.v1 artifact and prints
// the per-kernel occupancy/stall/roofline rollups (`--summary` truncates the
// per-rank×iteration table). `--report-out` re-renders the normalized
// profile document, `--roofline-out`/`--heatmap-out` write CSV views of the
// roofline scatter and the per-GPU workload heatmap. When the run's trace
// and/or metrics files are also given, the profile is reconciled against
// them — per-rank kernel counts, counted DRAM bytes, and traced durations
// must agree exactly (see DESIGN.md §10) — and any mismatch exits 1.
//
// `monitor` replays the trace through the health monitor (sampler, alert
// rules, built-in failure-mode detectors — see src/obs/monitor.hpp) and
// prints the incident log (`--summary` stops after the per-rule counts).
// `--health-out` writes the multihit.health.v1 document, `--rules` loads a
// declarative alert-rule file, `--sample-every` overrides the boundary
// cadence. With a metrics snapshot the incidents are cross-checked against
// its counters (mismatch exits 1). `--truth FILE` scores the incidents
// against an injected-fault ground-truth document (multihit.truth.v1, from
// brca_scaleout --truth-out) within `--truth-window` seconds, exiting 1
// unless recall is total and no built-in detector false-fired.
// `--annotate-out` writes a copy of the trace with one "health.<rule>"
// instant per incident for the Chrome/Perfetto viewer. `--slo-spec` loads an
// SLO spec whose budget objectives arm the serve burn detectors (serve-scale
// windows usually need `--sample-every 0.5 --window-samples 256` or so —
// the budget window must fit the retained history).
//
// `slo` replays a saved multihit.serve.v1 report through the per-tenant SLO
// evaluator (src/obs/slo.hpp) against a --spec objective file and prints the
// per-objective verdicts. `--report-out` writes the multihit.slo.v1 document
// — byte-identical to what `multihit-serve --slo-out` wrote for the same
// run, the in-process-vs-replay determinism gate in scripts/ci.sh. Any
// violated objective exits 1.
//
// `hostprof` loads a multihit.hostprof.v1 host-sweep profile (from
// brca_scaleout --host-profile-out) and prints the wall-clock breakdown
// (`--summary` drops the per-worker table). `--report-out` re-renders the
// document — byte-identical to the in-process emission, the offline-replay
// gate in scripts/ci.sh. `--folded-out` writes collapsed flamegraph stacks
// of the per-worker claim/evaluate/tail-idle split, `--deterministic-out`
// the wall-clock-free projection (byte-identical across runs and bitops
// backends of the same configuration). The profile's internal consistency
// (totals vs per-worker and per-sweep sums, claim-histogram mass, ChunkQueue
// poll invariants) is always crosschecked; any mismatch exits 1.
//
// `diff` is the cross-run regression engine (src/obs/diff.hpp): A and B are
// either multihit.run.v1 manifests (from brca_scaleout / multihit-serve
// --manifest-out or --artifacts-dir; every inventoried artifact is loaded
// and its content digest verified) or a pair of individual artifacts of the
// same kind. Every numeric series in the shared artifacts is compared
// exactly and classified identical / within-tolerance / improved /
// regressed / added / removed; `--tol FILE` loads a
// `tol <series-glob> rel|abs <bound>` spec relaxing named series. On top of
// the generic pass: critical-path makespan attribution by phase×rank cell,
// per-kernel profile deltas, incident matching, per-tenant SLO movement,
// and hostprof wall-clock deltas (informational). `--report-out` writes the
// multihit.diff.v1 document, byte-identical across repeated invocations. A
// regression verdict (regressed or removed series, a new incident in B, a
// newly violated SLO objective) exits 1.
//
// All outputs are deterministic: processing the same files twice produces
// byte-identical artifacts, which scripts/ci.sh uses as the determinism
// gate.
//
// Exit status: 0 on success; 2 on a usage error (unknown subcommand, missing
// operand, bad flag — usage goes to stderr); 1 on runtime failures
// (unreadable/malformed/ill-shaped inputs, unwritable outputs, failed
// profile reconciliation, health crosscheck mismatches, imperfect truth
// scores).

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/analyze.hpp"
#include "obs/diff.hpp"
#include "obs/hostprof.hpp"
#include "obs/monitor.hpp"
#include "obs/profile.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr << "usage: multihit-obstool analyze TRACE.json [METRICS.json]\n"
               "                        [--report-out FILE] [--folded-out FILE] [--quiet]\n"
               "       multihit-obstool profile PROFILE.json [TRACE.json] [METRICS.json]\n"
               "                        [--report-out FILE] [--roofline-out FILE]\n"
               "                        [--heatmap-out FILE] [--summary] [--quiet]\n"
               "       multihit-obstool monitor TRACE.json [METRICS.json]\n"
               "                        [--health-out FILE] [--rules FILE] [--sample-every S]\n"
               "                        [--window-samples N] [--slo-spec FILE]\n"
               "                        [--truth FILE] [--truth-window S] [--annotate-out FILE]\n"
               "                        [--summary] [--quiet]\n"
               "       multihit-obstool slo SERVE.json --spec FILE\n"
               "                        [--report-out FILE] [--summary] [--quiet]\n"
               "       multihit-obstool hostprof HOSTPROF.json\n"
               "                        [--report-out FILE] [--folded-out FILE]\n"
               "                        [--deterministic-out FILE] [--summary] [--quiet]\n"
               "       multihit-obstool diff A B [--tol FILE]\n"
               "                        [--report-out FILE] [--summary] [--quiet]\n";
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

int run_analyze(int argc, char** argv) {
  using namespace multihit::obs;
  std::string trace_path, metrics_path, report_out, folded_out;
  bool quiet = false;
  for (int a = 2; a < argc; ++a) {
    const std::string arg = argv[a];
    const auto next = [&]() -> const char* {
      if (a + 1 >= argc) usage();
      return argv[++a];
    };
    if (arg == "--report-out") {
      report_out = next();
    } else if (arg == "--folded-out") {
      folded_out = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else if (metrics_path.empty()) {
      metrics_path = arg;
    } else {
      usage();
    }
  }
  if (trace_path.empty()) usage();

  try {
    const JsonValue trace_doc = JsonValue::parse(read_file(trace_path));
    const Tracer tracer = tracer_from_chrome(trace_doc);

    JsonValue metrics_doc;
    if (!metrics_path.empty()) metrics_doc = JsonValue::parse(read_file(metrics_path));

    const TraceAnalysis analysis = analyze_trace(tracer);
    const JsonValue report =
        analysis_report(analysis, metrics_path.empty() ? nullptr : &metrics_doc);

    if (!report_out.empty() && !write_file(report_out, report.dump() + "\n")) {
      std::cerr << "error: cannot write report to " << report_out << "\n";
      return 1;
    }
    if (!folded_out.empty() && !write_file(folded_out, folded_stacks(tracer))) {
      std::cerr << "error: cannot write folded stacks to " << folded_out << "\n";
      return 1;
    }
    if (!quiet) std::cout << analysis_text(analysis);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

int run_profile(int argc, char** argv) {
  using namespace multihit::obs;
  std::string profile_path, trace_path, metrics_path;
  std::string report_out, roofline_out, heatmap_out;
  bool summary = false, quiet = false;
  for (int a = 2; a < argc; ++a) {
    const std::string arg = argv[a];
    const auto next = [&]() -> const char* {
      if (a + 1 >= argc) usage();
      return argv[++a];
    };
    if (arg == "--report-out") {
      report_out = next();
    } else if (arg == "--roofline-out") {
      roofline_out = next();
    } else if (arg == "--heatmap-out") {
      heatmap_out = next();
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else if (profile_path.empty()) {
      profile_path = arg;
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else if (metrics_path.empty()) {
      metrics_path = arg;
    } else {
      usage();
    }
  }
  if (profile_path.empty()) usage();

  try {
    const JsonValue profile_doc = JsonValue::parse(read_file(profile_path));
    const Profiler profiler = profiler_from_json(profile_doc);

    Tracer tracer;
    if (!trace_path.empty()) {
      tracer = tracer_from_chrome(JsonValue::parse(read_file(trace_path)));
    }
    JsonValue metrics_doc;
    if (!metrics_path.empty()) metrics_doc = JsonValue::parse(read_file(metrics_path));

    if (!report_out.empty() &&
        !write_file(report_out, profile_report(profiler).dump() + "\n")) {
      std::cerr << "error: cannot write profile report to " << report_out << "\n";
      return 1;
    }
    if (!roofline_out.empty() && !write_file(roofline_out, roofline_csv(profiler))) {
      std::cerr << "error: cannot write roofline CSV to " << roofline_out << "\n";
      return 1;
    }
    if (!heatmap_out.empty() && !write_file(heatmap_out, heatmap_csv(profiler))) {
      std::cerr << "error: cannot write heatmap CSV to " << heatmap_out << "\n";
      return 1;
    }
    if (!quiet) std::cout << profile_text(profiler, summary);

    // Reconciliation: the profile, the trace, and the metrics snapshot
    // describe the same run — any disagreement is a telemetry bug.
    const std::vector<std::string> mismatches = profile_crosscheck(
        profiler, trace_path.empty() ? nullptr : &tracer,
        metrics_path.empty() ? nullptr : &metrics_doc);
    if (!mismatches.empty()) {
      for (const std::string& mismatch : mismatches) {
        std::cerr << "reconciliation mismatch: " << mismatch << "\n";
      }
      return 1;
    }
    if (!quiet && (!trace_path.empty() || !metrics_path.empty())) {
      std::cout << "reconciliation: profile totals agree with "
                << (!trace_path.empty() && !metrics_path.empty()
                        ? "trace spans and metrics counters"
                        : (!trace_path.empty() ? "trace spans" : "metrics counters"))
                << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

int run_monitor(int argc, char** argv) {
  using namespace multihit::obs;
  std::string trace_path, metrics_path;
  std::string health_out, rules_path, slo_path, truth_path, annotate_out;
  MonitorOptions options;
  double truth_window = 0.25;
  bool summary = false, quiet = false;
  for (int a = 2; a < argc; ++a) {
    const std::string arg = argv[a];
    const auto next = [&]() -> const char* {
      if (a + 1 >= argc) usage();
      return argv[++a];
    };
    if (arg == "--health-out") {
      health_out = next();
    } else if (arg == "--rules") {
      rules_path = next();
    } else if (arg == "--slo-spec") {
      slo_path = next();
    } else if (arg == "--sample-every") {
      options.sample_every = std::atof(next());
    } else if (arg == "--window-samples") {
      options.window_samples = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--truth") {
      truth_path = next();
    } else if (arg == "--truth-window") {
      truth_window = std::atof(next());
    } else if (arg == "--annotate-out") {
      annotate_out = next();
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else if (metrics_path.empty()) {
      metrics_path = arg;
    } else {
      usage();
    }
  }
  if (trace_path.empty()) usage();

  try {
    Tracer tracer = tracer_from_chrome(JsonValue::parse(read_file(trace_path)));
    if (!rules_path.empty()) options.rules = parse_rules(read_file(rules_path));
    if (!slo_path.empty()) options.slo = parse_slo(read_file(slo_path));

    const HealthReport report = monitor_trace(tracer, options);

    if (!health_out.empty() &&
        !write_file(health_out, health_report(report).dump() + "\n")) {
      std::cerr << "error: cannot write health report to " << health_out << "\n";
      return 1;
    }
    if (!annotate_out.empty()) {
      annotate_trace(tracer, report);
      if (!write_file(annotate_out, tracer.to_chrome_json())) {
        std::cerr << "error: cannot write annotated trace to " << annotate_out << "\n";
        return 1;
      }
    }
    if (!quiet) std::cout << health_text(report, summary);

    if (!metrics_path.empty()) {
      const JsonValue metrics_doc = JsonValue::parse(read_file(metrics_path));
      const std::vector<std::string> mismatches = health_crosscheck(report, metrics_doc);
      if (!mismatches.empty()) {
        for (const std::string& mismatch : mismatches) {
          std::cerr << "health crosscheck mismatch: " << mismatch << "\n";
        }
        return 1;
      }
      if (!quiet) std::cout << "crosscheck: incidents agree with metrics counters\n";
    }

    if (!truth_path.empty()) {
      const std::vector<TruthEvent> truth =
          truth_from_json(JsonValue::parse(read_file(truth_path)));
      const HealthScore score = score_incidents(report, truth, truth_window);
      if (!quiet) std::cout << score_text(score);
      if (!score.perfect()) {
        std::cerr << "error: detectors scored imperfectly against ground truth\n";
        return 1;
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

int run_slo(int argc, char** argv) {
  using namespace multihit::obs;
  std::string serve_path, spec_path, report_out;
  bool summary = false, quiet = false;
  for (int a = 2; a < argc; ++a) {
    const std::string arg = argv[a];
    const auto next = [&]() -> const char* {
      if (a + 1 >= argc) usage();
      return argv[++a];
    };
    if (arg == "--spec") {
      spec_path = next();
    } else if (arg == "--report-out") {
      report_out = next();
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else if (serve_path.empty()) {
      serve_path = arg;
    } else {
      usage();
    }
  }
  if (serve_path.empty() || spec_path.empty()) usage();

  try {
    const std::vector<SloObjective> spec = parse_slo(read_file(spec_path));
    const JsonValue serve_doc = JsonValue::parse(read_file(serve_path));
    const SloInput input = slo_input_from_serve_json(serve_doc);
    const SloReport report = evaluate_slo(input, spec);

    if (!report_out.empty() &&
        !write_file(report_out, slo_report_json(report).dump() + "\n")) {
      std::cerr << "error: cannot write SLO report to " << report_out << "\n";
      return 1;
    }
    if (!quiet) std::cout << slo_text(report, summary);
    if (report.violated > 0) {
      std::cerr << "error: " << report.violated << " of " << report.objectives
                << " objective(s) violated\n";
      return 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

int run_hostprof(int argc, char** argv) {
  using namespace multihit::obs;
  std::string profile_path, report_out, folded_out, deterministic_out;
  bool summary = false, quiet = false;
  for (int a = 2; a < argc; ++a) {
    const std::string arg = argv[a];
    const auto next = [&]() -> const char* {
      if (a + 1 >= argc) usage();
      return argv[++a];
    };
    if (arg == "--report-out") {
      report_out = next();
    } else if (arg == "--folded-out") {
      folded_out = next();
    } else if (arg == "--deterministic-out") {
      deterministic_out = next();
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else if (profile_path.empty()) {
      profile_path = arg;
    } else {
      usage();
    }
  }
  if (profile_path.empty()) usage();

  try {
    const JsonValue doc = JsonValue::parse(read_file(profile_path));
    const HostProfile profile = hostprof_from_json(doc);

    if (!report_out.empty() &&
        !write_file(report_out, hostprof_report(profile).dump() + "\n")) {
      std::cerr << "error: cannot write host profile report to " << report_out << "\n";
      return 1;
    }
    if (!folded_out.empty() && !write_file(folded_out, hostprof_folded(profile))) {
      std::cerr << "error: cannot write folded stacks to " << folded_out << "\n";
      return 1;
    }
    if (!deterministic_out.empty() &&
        !write_file(deterministic_out, hostprof_deterministic(profile).dump() + "\n")) {
      std::cerr << "error: cannot write deterministic projection to " << deterministic_out
                << "\n";
      return 1;
    }
    if (!quiet) std::cout << hostprof_text(profile, summary);

    // The stored totals, the per-worker table, and the per-sweep table all
    // describe the same run; disagreement means a corrupt document or an
    // instrumentation bug.
    const std::vector<std::string> mismatches = hostprof_crosscheck(profile);
    if (!mismatches.empty()) {
      for (const std::string& mismatch : mismatches) {
        std::cerr << "reconciliation mismatch: " << mismatch << "\n";
      }
      return 1;
    }
    if (!quiet) std::cout << "reconciliation: totals agree with worker and sweep tables\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

int run_diff(int argc, char** argv) {
  using namespace multihit::obs;
  std::string path_a, path_b, tol_path, report_out;
  bool summary = false, quiet = false;
  for (int a = 2; a < argc; ++a) {
    const std::string arg = argv[a];
    const auto next = [&]() -> const char* {
      if (a + 1 >= argc) usage();
      return argv[++a];
    };
    if (arg == "--tol") {
      tol_path = next();
    } else if (arg == "--report-out") {
      report_out = next();
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else if (path_a.empty()) {
      path_a = arg;
    } else if (path_b.empty()) {
      path_b = arg;
    } else {
      usage();
    }
  }
  if (path_a.empty() || path_b.empty()) usage();

  try {
    DiffOptions options;
    if (!tol_path.empty()) options.tolerances = parse_tolerances(read_file(tol_path));
    const RunInput run_a = load_run(path_a);
    const RunInput run_b = load_run(path_b);
    const DiffReport report = diff_runs(run_a, run_b, options);

    if (!report_out.empty() &&
        !write_file(report_out, diff_report_json(report).dump() + "\n")) {
      std::cerr << "error: cannot write diff report to " << report_out << "\n";
      return 1;
    }
    if (!quiet) std::cout << diff_text(report, summary);
    if (diff_regression(report)) {
      std::cerr << "error: regression: " << report.counts.regressed << " regressed, "
                << report.counts.removed << " removed series, "
                << report.incidents.added.size() << " new incident(s), "
                << report.slo_newly_violated << " newly violated SLO objective(s)\n";
      return 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage();
  const std::string command = argv[1];
  if (command == "analyze") return run_analyze(argc, argv);
  if (command == "profile") return run_profile(argc, argv);
  if (command == "monitor") return run_monitor(argc, argv);
  if (command == "slo") return run_slo(argc, argv);
  if (command == "hostprof") return run_hostprof(argc, argv);
  if (command == "diff") return run_diff(argc, argv);
  usage();
}
