// BRCA scale-out: the paper's headline experiment end-to-end.
//
//   $ ./examples/brca_scaleout [nodes] [--scheduler ea|ed|mem]
//                              [--crash R@I[:F]] [--straggle R@I:F]
//                              [--drop R@I:N] [--abort I] [--checkpoint N]
//                              [--host-threads N] [--host-chunk C]
//                              [--trace-out FILE] [--metrics-out FILE]
//                              [--report-out FILE] [--profile-out FILE]
//                              [--health-out FILE] [--truth-out FILE]
//                              [--manifest-out FILE] [--artifacts-dir DIR]
//                              [--log-level LEVEL]
//
// `--scheduler` picks the λ partitioner (default ea = equi-area; ed =
// equi-distance, mem = memory-aware) — selections are identical under all
// three, only the modeled schedule changes, which makes an ea-vs-ed pair
// the canonical `multihit-obstool diff` regression-triage exercise.
//
// `--artifacts-dir DIR` is the one-flag observability bundle: every
// artifact above that was not explicitly routed elsewhere is written under
// DIR with its standard name (run.trace.json, run.metrics.json,
// run.analysis.json, run.profile.json, run.health.json, plus
// run.truth.json when faults are injected and run.hostprof.json when
// --host-threads is on), and a multihit.run.v1 manifest (DIR/manifest.json,
// or --manifest-out) inventories the run configuration plus every emitted
// file with a content digest — two such directories are diffable with
// `multihit-obstool diff A/manifest.json B/manifest.json`. `--manifest-out`
// also works without --artifacts-dir, inventorying whatever --*-out
// artifacts were requested.
//
// `--host-threads N` additionally runs the full greedy cover as a host-side
// multithreaded sweep on real silicon (src/core/hostsweep.hpp): N worker
// threads pull λ chunks off a lock-free queue and run the same 3x1
// enumeration kernels through the runtime-dispatched bitops backend
// (MULTIHIT_BITOPS=scalar|avx2|auto). Selections must be bit-identical to
// both the serial reference and the simulated cluster; the measured
// combinations/sec is real wall clock, not model. `--host-chunk C` sets the
// λ chunk size (default 1024).
//
// Observability: `--trace-out run.trace.json` writes a Chrome trace-event
// file of the functional run (open at https://ui.perfetto.dev — one lane per
// MPI rank plus engine/scheduler lanes, message-flow arrows between ranks,
// and per-rank occupancy/DRAM-throughput counter tracks),
// `--metrics-out run.metrics.json` writes the metrics-registry snapshot,
// `--report-out run.report.json` runs the trace analytics engine in-process
// and writes the multihit.analysis.v1 report (critical path, per-phase
// imbalance, comm overhead — same engine as `multihit-obstool analyze`), and
// `--profile-out run.profile.json` enables the per-launch kernel profiler
// and writes the multihit.profile.v1 artifact (read it with
// `multihit-obstool profile`). `--profile-out` requires instrumentation:
// pass it together with at least one of the other three output flags.
// `--health-out run.health.json` replays the run's trace through the health
// monitor (src/obs/monitor.hpp) and writes the multihit.health.v1 incident
// report — the same document `multihit-obstool monitor` produces offline —
// and `--truth-out run.truth.json` exports the injected-fault ground truth
// (multihit.truth.v1) the monitor's detectors can be scored against.
// All are deterministic: timestamps are simulated seconds, so identical runs
// produce byte-identical files.
//
// Part 1 runs the *functional* distributed pipeline (equi-area schedule ->
// per-GPU maxF + parallelReduceMax -> node merge -> MPI reduce) on a
// BRCA-like functional-scale dataset across the requested number of
// simulated Summit nodes (default 4), verifying it selects exactly the
// serial engine's combinations.
//
// Fault flags inject failures into the run (repeatable): `--crash 1@0` kills
// rank 1 mid-compute in iteration 0 (optional :F = fraction of its compute
// finished before dying), `--straggle 2@1:4` slows rank 2 by 4x from
// iteration 1, `--drop 3@0:2` loses two of rank 3's tree messages in
// iteration 0, and `--checkpoint 2` snapshots every 2 iterations (enables
// kJobAbort-style recovery accounting). Whatever is injected, the selected
// combinations must remain IDENTICAL to the serial reference — faults only
// stretch the modeled clock.
//
// Part 2 prices the same pipeline at full paper scale (G = 19411, 911 tumor
// samples) on 100-1000 nodes with the analytic machine model — the Fig. 4(a)
// strong-scaling curve.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "bitmat/bitops.hpp"
#include "cluster/distributed.hpp"
#include "cluster/scaling.hpp"
#include "core/engine.hpp"
#include "core/hostsweep.hpp"
#include "data/registry.hpp"
#include "fault/injector.hpp"
#include "obs/analyze.hpp"
#include "obs/hostprof.hpp"
#include "obs/monitor.hpp"
#include "obs/recorder.hpp"
#include "obs/runinfo.hpp"
#include "obs/schema.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr << "usage: brca_scaleout [nodes] [--scheduler ea|ed|mem]\n"
               "                     [--crash R@I[:F]] [--straggle R@I:F]\n"
               "                     [--drop R@I:N] [--abort I] [--checkpoint N]\n"
               "                     [--host-threads N] [--host-chunk C]\n"
               "                     [--host-profile-out FILE]\n"
               "                     [--trace-out FILE] [--metrics-out FILE]\n"
               "                     [--report-out FILE] [--profile-out FILE]\n"
               "                     [--health-out FILE] [--truth-out FILE]\n"
               "                     [--manifest-out FILE] [--artifacts-dir DIR]\n"
               "                     [--log-level LEVEL]\n";
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace multihit;
  std::uint32_t nodes = 4;
  DistributedOptions options;  // 4-hit, 3x1, EA, both prefetches, splicing
  std::uint32_t host_threads = 0;  // 0 = skip the host-sweep part
  std::uint64_t host_chunk = 1024;
  std::string host_profile_out;
  std::string trace_out, metrics_out, report_out, profile_out, health_out, truth_out;
  std::string manifest_out, artifacts_dir;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    const auto next = [&]() -> const char* {
      if (a + 1 >= argc) usage();
      return argv[++a];
    };
    unsigned rank = 0, iter = 0, count = 0;
    double value = 0.0;
    if (arg == "--crash") {
      const char* s = next();
      value = 0.5;
      if (std::sscanf(s, "%u@%u:%lf", &rank, &iter, &value) < 2) usage();
      options.faults.events.push_back(
          {FaultKind::kRankCrash, rank, iter, value, 1});
    } else if (arg == "--straggle") {
      if (std::sscanf(next(), "%u@%u:%lf", &rank, &iter, &value) != 3) usage();
      options.faults.events.push_back({FaultKind::kStraggler, rank, iter, value, 2});
    } else if (arg == "--drop") {
      if (std::sscanf(next(), "%u@%u:%u", &rank, &iter, &count) != 3) usage();
      options.faults.events.push_back({FaultKind::kMessageDrop, rank, iter, 0.0, count});
    } else if (arg == "--abort") {
      if (std::sscanf(next(), "%u", &iter) != 1) usage();
      options.faults.events.push_back({FaultKind::kJobAbort, 0, iter, 0.0, 1});
    } else if (arg == "--checkpoint") {
      options.checkpoint_every = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--host-threads") {
      host_threads = static_cast<std::uint32_t>(std::atoi(next()));
      if (host_threads == 0) usage();
    } else if (arg == "--host-chunk") {
      host_chunk = static_cast<std::uint64_t>(std::atoll(next()));
      if (host_chunk == 0) usage();
    } else if (arg == "--host-profile-out") {
      host_profile_out = next();
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--report-out") {
      report_out = next();
    } else if (arg == "--profile-out") {
      profile_out = next();
    } else if (arg == "--health-out") {
      health_out = next();
    } else if (arg == "--truth-out") {
      truth_out = next();
    } else if (arg == "--manifest-out") {
      manifest_out = next();
    } else if (arg == "--artifacts-dir") {
      artifacts_dir = next();
    } else if (arg == "--scheduler") {
      const std::string name = next();
      if (name == "ea") {
        options.scheduler = SchedulerKind::kEquiArea;
      } else if (name == "ed") {
        options.scheduler = SchedulerKind::kEquiDistance;
      } else if (name == "mem") {
        options.scheduler = SchedulerKind::kMemoryAware;
      } else {
        usage();
      }
    } else if (arg == "--log-level") {
      const char* name = next();
      const auto level = log::parse_level(name);
      if (!level) {
        std::cerr << "unknown --log-level '" << name << "' (expected one of: "
                  << log::level_names() << ")\n";
        return 1;
      }
      log::set_level(*level);
    } else if (arg[0] != '-') {
      nodes = static_cast<std::uint32_t>(std::atoi(arg.c_str()));
    } else {
      usage();
    }
  }
  if (nodes == 0 || nodes > 1024) {
    std::cerr << "nodes must be in [1, 1024]\n";
    return 1;
  }
  if (!host_profile_out.empty() && host_threads == 0) {
    std::cerr << "--host-profile-out requires --host-threads (it profiles the host sweep)\n";
    return 1;
  }
  if (!artifacts_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(artifacts_dir, ec);
    if (ec) {
      std::cerr << "error: cannot create --artifacts-dir " << artifacts_dir << ": "
                << ec.message() << "\n";
      return 1;
    }
    const auto standard = [&artifacts_dir](const char* name) {
      return (std::filesystem::path(artifacts_dir) / name).string();
    };
    if (trace_out.empty()) trace_out = standard("run.trace.json");
    if (metrics_out.empty()) metrics_out = standard("run.metrics.json");
    if (report_out.empty()) report_out = standard("run.analysis.json");
    if (profile_out.empty()) profile_out = standard("run.profile.json");
    if (health_out.empty()) health_out = standard("run.health.json");
    // Ground truth only means something with injected faults, and the host
    // profile only exists when the host sweep runs.
    if (truth_out.empty() && !options.faults.empty()) truth_out = standard("run.truth.json");
    if (host_profile_out.empty() && host_threads > 0) {
      host_profile_out = standard("run.hostprof.json");
    }
    if (manifest_out.empty()) manifest_out = standard("manifest.json");
  }

  // A BRCA-shaped 4-hit downscale: the registry's BRCA entry is 2-hit (as
  // the paper estimates), so the scale-out demo plants 4-hit combinations at
  // BRCA-like sample counts instead.
  SyntheticSpec spec;
  spec.genes = 90;
  spec.tumor_samples = 120;
  spec.normal_samples = 80;
  spec.hits = 4;
  spec.num_combinations = 5;
  spec.background_rate = 0.012;
  spec.seed = 911;
  Dataset data = generate_dataset(spec);
  data.name = "BRCA-4hit-downscale";

  std::cout << "Part 1 — functional distributed run: " << data.name << " (G="
            << data.genes() << "), " << nodes << " nodes (" << nodes * 6
            << " simulated V100s), 4-hit.\n";
  if (!options.faults.empty()) {
    std::cout << "  fault plan: " << describe(options.faults) << "\n";
  }

  SummitConfig config;
  config.nodes = nodes;
  const ClusterRunner runner(config);
  obs::Recorder recorder;
  if (!trace_out.empty() || !metrics_out.empty() || !report_out.empty() ||
      !health_out.empty()) {
    options.recorder = &recorder;
  }
  if (!profile_out.empty()) {
    // The kernel profiler piggybacks on the recorder seam: without at least
    // one instrumented output there is no recorder attached to the run, so
    // the profile would silently come out empty. Reject instead.
    if (!options.recorder) {
      std::cerr << "error: --profile-out requires instrumentation; pass at least one of "
                   "--trace-out, --metrics-out, or --report-out\n";
      return 1;
    }
    recorder.profile.enable();
  }
  ClusterRunResult distributed;
  try {
    distributed = runner.run(data, options);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  if (!trace_out.empty()) {
    if (!recorder.write_trace(trace_out)) {
      std::cerr << "error: cannot write trace to " << trace_out << "\n";
      return 1;
    }
    std::cout << "  trace written to " << trace_out << " ("
              << recorder.trace.size() << " events; open at https://ui.perfetto.dev)\n";
  }
  if (!metrics_out.empty()) {
    if (!recorder.write_metrics(metrics_out)) {
      std::cerr << "error: cannot write metrics to " << metrics_out << "\n";
      return 1;
    }
    std::cout << "  metrics written to " << metrics_out << " ("
              << recorder.metrics.series_count() << " series)\n";
  }
  if (!report_out.empty()) {
    const obs::TraceAnalysis analysis = obs::analyze_trace(recorder.trace);
    const obs::JsonValue metrics_doc = recorder.metrics.snapshot();
    std::ofstream out(report_out);
    if (out) out << obs::analysis_report(analysis, &metrics_doc).dump() << '\n';
    if (!out) {
      std::cerr << "error: cannot write analysis report to " << report_out << "\n";
      return 1;
    }
    std::cout << "  analysis report written to " << report_out << " (critical path "
              << analysis.critical_total << " s, comm overhead "
              << analysis.comm_fraction * 100.0 << "%)\n";
  }
  if (!profile_out.empty()) {
    if (!recorder.write_profile(profile_out)) {
      std::cerr << "error: cannot write kernel profile to " << profile_out << "\n";
      return 1;
    }
    std::cout << "  kernel profile written to " << profile_out << " ("
              << recorder.profile.size()
              << " launch records; read with multihit-obstool profile)\n";
  }
  if (!health_out.empty()) {
    // Monitor the trace exactly as the offline tool will see it — serialized
    // to Chrome format (microsecond timestamps) and parsed back — so the
    // in-process document is byte-identical to an obstool monitor replay.
    const obs::Tracer replay =
        obs::tracer_from_chrome(obs::JsonValue::parse(recorder.trace.to_chrome_json()));
    const obs::HealthReport health = obs::monitor_trace(replay);
    std::ofstream out(health_out);
    if (out) out << obs::health_report(health).dump() << '\n';
    if (!out) {
      std::cerr << "error: cannot write health report to " << health_out << "\n";
      return 1;
    }
    std::cout << "  health report written to " << health_out << " ("
              << health.incidents.size()
              << " incident(s); read with multihit-obstool monitor)\n";
  }
  if (!truth_out.empty()) {
    std::ofstream out(truth_out);
    if (out) out << obs::truth_json(truth_events(distributed.fault_events)).dump() << '\n';
    if (!out) {
      std::cerr << "error: cannot write fault ground truth to " << truth_out << "\n";
      return 1;
    }
    std::cout << "  fault ground truth written to " << truth_out << " ("
              << distributed.fault_events.size() << " event(s))\n";
  }

  EngineConfig serial_config;
  serial_config.hits = 4;
  const GreedyResult serial =
      run_greedy(data.tumor, data.normal, serial_config, make_serial_evaluator(4));

  const bool identical = distributed.greedy.combinations() == serial.combinations();
  std::cout << "  combinations selected: " << distributed.greedy.iterations.size()
            << " (serial reference: " << serial.iterations.size() << ") -> "
            << (identical ? "IDENTICAL" : "MISMATCH!") << "\n"
            << "  modeled wall time: " << distributed.total_time << " s ("
            << distributed.iterations.size() << " iterations + schedule "
            << distributed.schedule_time << " s + job overhead)\n";
  if (!distributed.fault_events.empty()) {
    std::cout << "  faults fired: " << distributed.fault_events.size() << " ("
              << distributed.ranks_lost << " rank(s) lost), recovery "
              << distributed.recovery_time << " s";
    if (distributed.checkpoints_taken > 0) {
      std::cout << ", " << distributed.checkpoints_taken << " checkpoint(s) in "
                << distributed.checkpoint_time << " s";
    }
    std::cout << "\n";
    for (const FaultRecord& rec : distributed.fault_events) {
      std::cout << "    " << fault_kind_name(rec.kind) << " rank " << rec.rank
                << " @ iteration " << rec.iteration << " (t=" << rec.sim_time
                << " s, cost " << rec.cost << " s)\n";
    }
  }
  if (!identical) return 1;

  if (host_threads > 0) {
    HostSweepOptions sweep;
    sweep.hits = 4;
    sweep.threads = host_threads;
    sweep.chunk = host_chunk;
    obs::HostProfiler host_profiler;
    if (!host_profile_out.empty()) sweep.profiler = &host_profiler;
    std::cout << "\nPart 1b — host-threaded sweep (real silicon): " << host_threads
              << " thread(s), chunk " << host_chunk << ", bitops backend "
              << backend_name(active_backend()) << ".\n";
    HostSweepTelemetry total;
    const Evaluator sweep_eval = make_host_sweep_evaluator(sweep, &total);
    const auto t0 = std::chrono::steady_clock::now();
    const GreedyResult swept = run_greedy(data.tumor, data.normal, serial_config, sweep_eval);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    const bool sweep_identical = swept.combinations() == serial.combinations() &&
                                 swept.combinations() == distributed.greedy.combinations();
    std::cout << "  combinations selected: " << swept.iterations.size()
              << " -> " << (sweep_identical ? "IDENTICAL" : "MISMATCH!")
              << " (vs serial and distributed)\n"
              << "  " << total.stats.combinations << " combinations in " << seconds
              << " s wall = " << static_cast<double>(total.stats.combinations) / seconds
              << " combos/sec (" << total.chunks << " chunks, " << total.arena_blocks
              << " arena block(s) across " << total.threads << " worker(s))\n";
    if (!sweep_identical) return 1;
    if (!host_profile_out.empty()) {
      const obs::HostProfile& profile = host_profiler.profile();
      std::ofstream out(host_profile_out);
      if (out) out << obs::hostprof_report(profile).dump() << '\n';
      if (!out) {
        std::cerr << "error: cannot write host profile to " << host_profile_out << "\n";
        return 1;
      }
      std::cout << "  host profile written to " << host_profile_out << " ("
                << profile.sweeps.size() << " sweep(s), "
                << profile.total_calls.total()
                << " bitops call(s); read with multihit-obstool hostprof)\n";
    }
  }

  if (!manifest_out.empty()) {
    obs::RunManifest manifest;
    manifest.driver = "brca_scaleout";
    obs::set_config(manifest, "nodes", std::to_string(nodes));
    obs::set_config(manifest, "gpus", std::to_string(nodes * 6));
    obs::set_config(manifest, "hits", "4");
    obs::set_config(manifest, "scheme", "3x1");
    obs::set_config(manifest, "scheduler", scheduler_name(options.scheduler));
    obs::set_config(manifest, "seed", std::to_string(spec.seed));
    obs::set_config(manifest, "dataset", data.name);
    obs::set_config(manifest, "bitops_backend", backend_name(active_backend()));
    obs::set_config(manifest, "host_threads", std::to_string(host_threads));
    obs::set_config(manifest, "host_chunk", std::to_string(host_chunk));
    obs::set_config(manifest, "checkpoint_every",
                    std::to_string(options.checkpoint_every));
    const std::string faults =
        options.faults.empty() ? std::string("none") : describe(options.faults);
    obs::set_config(manifest, "faults", faults);
    obs::set_config(manifest, "fault_plan_digest", obs::content_digest(faults));
    try {
      // Digest from the path we actually wrote, then record the
      // manifest-relative form so --artifacts-dir directories relocate.
      const auto add = [&](const char* name, std::string_view schema,
                           const std::string& path) {
        if (path.empty()) return;
        obs::add_artifact_from_file(manifest, name, std::string(schema), path);
        for (obs::RunArtifact& artifact : manifest.artifacts) {
          if (artifact.name == name) {
            artifact.path = obs::manifest_artifact_path(path, manifest_out);
          }
        }
      };
      add("trace", obs::kChromeTraceTag, trace_out);
      add("metrics", obs::kMetricsSchema, metrics_out);
      add("analysis", obs::kAnalysisSchema, report_out);
      add("profile", obs::kProfileSchema, profile_out);
      add("health", obs::kHealthSchema, health_out);
      add("truth", obs::kTruthSchema, truth_out);
      add("hostprof", obs::kHostprofSchema, host_profile_out);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
    if (!obs::write_manifest(manifest, manifest_out)) {
      std::cerr << "error: cannot write run manifest to " << manifest_out << "\n";
      return 1;
    }
    std::cout << "  run manifest written to " << manifest_out << " ("
              << manifest.artifacts.size()
              << " artifact(s); diff runs with multihit-obstool diff)\n";
  }

  std::cout << "\nPart 2 — paper-scale strong scaling (analytic model, BRCA G=19411):\n";
  ModelInputs inputs;  // paper-scale BRCA defaults
  const std::vector<std::uint32_t> fleet{100, 200, 400, 600, 800, 1000};
  const auto points = strong_scaling(SummitConfig{}, inputs, fleet);
  Table table({"nodes", "GPUs", "modeled time (s)", "efficiency vs 100"});
  for (const auto& p : points) {
    table.add_row({static_cast<long long>(p.nodes), static_cast<long long>(p.nodes * 6),
                   p.time, p.efficiency});
  }
  table.print(std::cout);
  std::cout << "[paper: 84.18% at 1000 nodes, 90.14% average for 200-1000]\n";
  return 0;
}
