// BRCA scale-out: the paper's headline experiment end-to-end.
//
//   $ ./examples/brca_scaleout [nodes]
//
// Part 1 runs the *functional* distributed pipeline (equi-area schedule ->
// per-GPU maxF + parallelReduceMax -> node merge -> MPI reduce) on a
// BRCA-like functional-scale dataset across the requested number of
// simulated Summit nodes (default 4), verifying it selects exactly the
// serial engine's combinations.
//
// Part 2 prices the same pipeline at full paper scale (G = 19411, 911 tumor
// samples) on 100-1000 nodes with the analytic machine model — the Fig. 4(a)
// strong-scaling curve.

#include <cstdlib>
#include <iostream>

#include "cluster/distributed.hpp"
#include "cluster/scaling.hpp"
#include "core/engine.hpp"
#include "data/registry.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace multihit;
  const std::uint32_t nodes = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4;
  if (nodes == 0 || nodes > 1024) {
    std::cerr << "nodes must be in [1, 1024]\n";
    return 1;
  }

  // A BRCA-shaped 4-hit downscale: the registry's BRCA entry is 2-hit (as
  // the paper estimates), so the scale-out demo plants 4-hit combinations at
  // BRCA-like sample counts instead.
  SyntheticSpec spec;
  spec.genes = 90;
  spec.tumor_samples = 120;
  spec.normal_samples = 80;
  spec.hits = 4;
  spec.num_combinations = 5;
  spec.background_rate = 0.012;
  spec.seed = 911;
  Dataset data = generate_dataset(spec);
  data.name = "BRCA-4hit-downscale";

  std::cout << "Part 1 — functional distributed run: " << data.name << " (G="
            << data.genes() << "), " << nodes << " nodes (" << nodes * 6
            << " simulated V100s), 4-hit.\n";

  DistributedOptions options;  // 4-hit, 3x1, EA, both prefetches, splicing
  SummitConfig config;
  config.nodes = nodes;
  const ClusterRunner runner(config);
  const ClusterRunResult distributed = runner.run(data, options);

  EngineConfig serial_config;
  serial_config.hits = 4;
  const GreedyResult serial =
      run_greedy(data.tumor, data.normal, serial_config, make_serial_evaluator(4));

  const bool identical = distributed.greedy.combinations() == serial.combinations();
  std::cout << "  combinations selected: " << distributed.greedy.iterations.size()
            << " (serial reference: " << serial.iterations.size() << ") -> "
            << (identical ? "IDENTICAL" : "MISMATCH!") << "\n"
            << "  modeled wall time: " << distributed.total_time << " s ("
            << distributed.iterations.size() << " iterations + schedule "
            << distributed.schedule_time << " s + job overhead)\n";
  if (!identical) return 1;

  std::cout << "\nPart 2 — paper-scale strong scaling (analytic model, BRCA G=19411):\n";
  ModelInputs inputs;  // paper-scale BRCA defaults
  const std::vector<std::uint32_t> fleet{100, 200, 400, 600, 800, 1000};
  const auto points = strong_scaling(SummitConfig{}, inputs, fleet);
  Table table({"nodes", "GPUs", "modeled time (s)", "efficiency vs 100"});
  for (const auto& p : points) {
    table.add_row({static_cast<long long>(p.nodes), static_cast<long long>(p.nodes * 6),
                   p.time, p.efficiency});
  }
  table.print(std::cout);
  std::cout << "[paper: 84.18% at 1000 nodes, 90.14% average for 200-1000]\n";
  return 0;
}
