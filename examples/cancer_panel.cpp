// Cancer panel: the paper's end-to-end biological workflow on the full
// registry of 11 four-plus-hit cancer types — MAF-level data, 75/25
// train/test split, 4-hit discovery with the 3x1 GPU kernel, and per-type
// classification (the paper's Fig. 9 protocol), finishing with a
// driver-vs-passenger hotspot readout (the Fig. 10 analysis).
//
//   $ ./examples/cancer_panel [CODE]
//
// With a cancer-type CODE (e.g. ESCA) only that type runs, with full detail.

#include <algorithm>
#include <iostream>
#include <numeric>
#include <stdexcept>
#include <string>

#include "classify/classifier.hpp"
#include "core/engine.hpp"
#include "core/schemes.hpp"
#include "data/maf.hpp"
#include "data/registry.hpp"
#include "util/table.hpp"

namespace {

using namespace multihit;

// The kernel MUST match the type's hit count: the evaluator's combo_rank is
// a linear index into the h-combination space, and the greedy loop unranks
// it with config.hits — a 4-hit rank unranked as BRCA's 2-hit combination
// fabricates out-of-range gene indices (and crashed here once).
Evaluator gpu_kernel_evaluator(std::uint32_t hits) {
  constexpr MemOpts kPrefetch{.prefetch_i = true, .prefetch_j = true};
  switch (hits) {
    case 2:
      return [=](const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx) {
        return evaluate_range_2hit(tumor, normal, ctx, Scheme2::k1x1, 0,
                                   scheme2_threads(Scheme2::k1x1, tumor.genes()), kPrefetch);
      };
    case 4:
      return [=](const BitMatrix& tumor, const BitMatrix& normal, const FContext& ctx) {
        return evaluate_range_4hit(tumor, normal, ctx, Scheme4::k3x1, 0,
                                   scheme4_threads(Scheme4::k3x1, tumor.genes()), kPrefetch);
      };
    default:
      throw std::invalid_argument("cancer_panel: no GPU kernel wired for hits=" +
                                  std::to_string(hits));
  }
}

void run_type(const CancerType& type, bool verbose) {
  // Full pipeline: mutation-level records -> summarized matrices.
  SyntheticSpec spec = type.functional;
  const MafStudy study = generate_maf_study(spec);
  Dataset data = summarize_maf(study);
  data.name = type.code;

  const auto split = split_dataset(data, 0.75, spec.seed ^ 0xABCD);

  EngineConfig config;
  config.hits = type.hits;
  const GreedyResult trained =
      run_greedy(split.train.tumor, split.train.normal, config, gpu_kernel_evaluator(type.hits));
  const CombinationClassifier classifier(trained.combinations());
  const ClassificationReport report = evaluate_classifier(classifier, split.test);

  std::cout << type.code << " (" << type.description << "): "
            << trained.iterations.size() << " combinations, test sensitivity "
            << report.sensitivity() << ", specificity " << report.specificity() << "\n";

  if (!verbose) return;

  std::cout << "\nSelected combinations (gene symbols):\n";
  for (const auto& it : trained.iterations) {
    std::cout << "  {";
    for (std::size_t i = 0; i < it.genes.size(); ++i) {
      std::cout << (i ? ", " : "") << study.genes[it.genes[i]].symbol;
    }
    std::cout << "}  F=" << it.f << "  TP=" << it.tp << "\n";
  }

  // Fig. 10-style hotspot analysis on the top combination.
  if (!trained.iterations.empty()) {
    std::cout << "\nMutation-position analysis of the top combination:\n";
    for (const std::uint32_t gene : trained.iterations.front().genes) {
      const auto hist = position_histogram(study, gene, /*tumor=*/true);
      const auto total = std::accumulate(hist.begin(), hist.end(), 0u);
      const auto peak = std::max_element(hist.begin(), hist.end());
      const double frac = total ? static_cast<double>(*peak) / total : 0.0;
      std::cout << "  " << study.genes[gene].symbol << ": " << total
                << " tumor mutations, top position carries " << 100.0 * frac << "% -> "
                << (frac > 0.4 ? "driver-like hotspot (IDH1-like)"
                               : "spread out (passenger-like, MUC6-like)")
                << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace multihit;
  if (argc > 1) {
    const auto type = find_cancer_type(argv[1]);
    if (!type) {
      std::cerr << "unknown cancer type '" << argv[1] << "'; known:";
      for (const auto& t : cancer_registry()) std::cerr << ' ' << t.code;
      std::cerr << "\n";
      return 1;
    }
    run_type(*type, /*verbose=*/true);
    return 0;
  }
  std::cout << "4-hit discovery + classification across the 11 four-plus-hit cancer "
               "types (synthetic registry):\n\n";
  for (const CancerType& type : four_plus_hit_types()) {
    run_type(type, /*verbose=*/false);
  }
  std::cout << "\nRun with a type code (e.g. ./cancer_panel ESCA) for full detail.\n";
  return 0;
}
