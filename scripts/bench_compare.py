#!/usr/bin/env python3
"""Validate BENCH_*.json records and diff them against committed baselines.

The bench binaries (fig4_scaling, fig8_comm_overhead, tab_fault_overhead, ...)
write machine-readable perf records — schema multihit.bench.v1, see
src/obs/bench.hpp — into $MULTIHIT_BENCH_DIR. This script is the regression
gate over that trajectory:

  1. every record must parse and carry the expected schema/fields;
  2. every series present in the matching bench/baselines/BENCH_<name>.json
     is compared with a *signed* relative delta; a move beyond --threshold
     is classed `improved` when it lands in the better direction for that
     series (lower-is-better heuristic mirroring obs::lower_is_better in
     src/obs/diff.cpp) and `DRIFT` when it does not — both demand a
     baseline update, so both gate under --strict;
  3. series in the record but absent from the baseline are reported as NEW —
     unbaselined measurements silently escape the gate otherwise.

By default drift only warns (exit 0) so modeled-time refinements don't block
CI; --strict turns schema violations AND drift into a non-zero exit for
deliberate perf-gate runs.

Usage:
  scripts/bench_compare.py [--baseline-dir bench/baselines]
                           [--threshold 0.10] [--strict] FILE...
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys

SCHEMA = "multihit.bench.v1"
METRICS_SCHEMA = "multihit.metrics.v1"


def fail(errors: list[str], message: str) -> None:
    errors.append(message)
    print(f"ERROR: {message}", file=sys.stderr)


def warn(message: str) -> None:
    print(f"WARN: {message}", file=sys.stderr)


def validate(path: str, errors: list[str]) -> dict | None:
    """Checks one record against the multihit.bench.v1 shape."""
    try:
        with open(path, encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        fail(errors, f"{path}: unreadable or invalid JSON: {exc}")
        return None

    if record.get("schema") != SCHEMA:
        fail(errors, f"{path}: schema is {record.get('schema')!r}, expected {SCHEMA!r}")
        return None
    if not isinstance(record.get("bench"), str) or not record["bench"]:
        fail(errors, f"{path}: missing bench name")
        return None
    series = record.get("series")
    if not isinstance(series, list) or not series:
        fail(errors, f"{path}: series must be a non-empty list")
        return None
    for point in series:
        if not isinstance(point.get("name"), str):
            fail(errors, f"{path}: series point without a name: {point}")
            return None
        value = point.get("value")
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            fail(errors, f"{path}: series {point.get('name')!r} has non-finite value")
            return None
    metrics = record.get("metrics")
    if not isinstance(metrics, dict) or metrics.get("schema") != METRICS_SCHEMA:
        fail(errors, f"{path}: metrics section missing or not {METRICS_SCHEMA!r}")
        return None
    return record


def series_map(record: dict) -> dict[str, float]:
    return {point["name"]: float(point["value"]) for point in record["series"]}


HIGHER_BETTER = ("attainment", "admission", "occupancy", "efficiency",
                 "throughput", "per_sec", "speedup", "cache_hit",
                 "completed", "busy_fraction", "headroom")


def lower_is_better(name: str) -> bool:
    """Mirrors obs::lower_is_better (src/obs/diff.cpp) so the Python and C++
    gates label the same move the same way."""
    return not any(token in name for token in HIGHER_BETTER)


def compare(path: str, record: dict, baseline_dir: str, threshold: float,
            drift: list[str], unbaselined: list[str]) -> None:
    baseline_path = os.path.join(baseline_dir, f"BENCH_{record['bench']}.json")
    if not os.path.exists(baseline_path):
        warn(f"{path}: no baseline at {baseline_path} (skipping comparison)")
        return
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)

    current = series_map(record)
    base = series_map(baseline)
    for name, base_value in sorted(base.items()):
        if name not in current:
            drift.append(f"{record['bench']}: series {name!r} disappeared")
            continue
        value = current[name]
        if base_value == 0.0:
            delta = 0.0 if value == 0.0 else math.copysign(math.inf, value)
        else:
            delta = (value - base_value) / abs(base_value)
        beyond = abs(delta) > threshold
        if not beyond:
            marker = "ok"
        elif (value < base_value) == lower_is_better(name):
            marker = "improved"
        else:
            marker = "DRIFT"
        print(f"  {marker:<8} {record['bench']}.{name}: {base_value:.6g} -> "
              f"{value:.6g} ({delta:+.2%})")
        if beyond:
            drift.append(f"{record['bench']}.{name}: {base_value:.6g} -> "
                         f"{value:.6g} ({delta:+.2%}, {marker})")
    for name in sorted(set(current) - set(base)):
        print(f"  {'NEW':<8} {record['bench']}.{name}: {current[name]:.6g} "
              "(no baseline)")
        unbaselined.append(f"{record['bench']}.{name}: {current[name]:.6g}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="BENCH_*.json records to check")
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative drift that counts as a regression (default 0.10)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on schema errors, drift, or unbaselined "
                             "series (default: warn only)")
    args = parser.parse_args()

    errors: list[str] = []
    drift: list[str] = []
    unbaselined: list[str] = []
    for path in args.files:
        record = validate(path, errors)
        if record is None:
            continue
        print(f"{path}: valid {SCHEMA} record for bench {record['bench']!r} "
              f"({len(record['series'])} series)")
        compare(path, record, args.baseline_dir, args.threshold, drift, unbaselined)

    if drift:
        warn(f"{len(drift)} series drifted beyond {args.threshold:.0%}:")
        for line in drift:
            print(f"  {line}", file=sys.stderr)
    if unbaselined:
        warn(f"{len(unbaselined)} series have no baseline entry "
             "(add them to the baseline record):")
        for line in unbaselined:
            print(f"  {line}", file=sys.stderr)
    if errors:
        return 1
    if (drift or unbaselined) and args.strict:
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
