#!/bin/sh
# multihit-obstool CLI contract test.
#
#   usage errors   -> exit 2, usage text on stderr, nothing on stdout
#   runtime errors -> exit 1 (unreadable inputs, malformed documents, ...)
#
# Usage: test_obstool_cli.sh /path/to/multihit-obstool
set -u

OBSTOOL=${1:?usage: test_obstool_cli.sh OBSTOOL}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
fails=0

# expect NAME EXPECTED_STATUS [args...]
expect() {
  name=$1 want=$2
  shift 2
  "$OBSTOOL" "$@" > "$TMP/out" 2> "$TMP/err"
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL $name: exit $got, want $want (args: $*)" >&2
    fails=$((fails + 1))
  fi
}

expect_usage_on_stderr() {
  name=$1
  shift
  "$OBSTOOL" "$@" > "$TMP/out" 2> "$TMP/err"
  if ! grep -q '^usage:' "$TMP/err"; then
    echo "FAIL $name: no usage text on stderr (args: $*)" >&2
    fails=$((fails + 1))
  fi
  if [ -s "$TMP/out" ]; then
    echo "FAIL $name: usage error wrote to stdout (args: $*)" >&2
    fails=$((fails + 1))
  fi
}

# --- usage errors: exit 2, usage on stderr -------------------------------
expect no_arguments 2
expect unknown_subcommand 2 frobnicate trace.json
expect_usage_on_stderr unknown_subcommand_usage frobnicate trace.json
expect analyze_missing_operand 2 analyze
expect profile_missing_operand 2 profile
expect monitor_missing_operand 2 monitor
expect analyze_unknown_flag 2 analyze trace.json --bogus
expect profile_unknown_flag 2 profile profile.json --bogus
expect monitor_unknown_flag 2 monitor trace.json --bogus
expect monitor_flag_missing_value 2 monitor trace.json --rules
expect_usage_on_stderr analyze_missing_operand_usage analyze

# --- runtime errors: exit 1 ----------------------------------------------
expect analyze_nonexistent_input 1 analyze "$TMP/no-such-trace.json"
expect profile_nonexistent_input 1 profile "$TMP/no-such-profile.json"
expect monitor_nonexistent_input 1 monitor "$TMP/no-such-trace.json"

printf 'not json' > "$TMP/garbage.json"
expect analyze_malformed_input 1 analyze "$TMP/garbage.json"
expect profile_malformed_input 1 profile "$TMP/garbage.json"
expect monitor_malformed_input 1 monitor "$TMP/garbage.json"

# A metrics document where a trace belongs: the schema check must reject it
# at runtime, naming both tags.
printf '{"schema":"multihit.metrics.v1","counters":[]}' > "$TMP/metrics.json"
expect monitor_wrong_schema 1 monitor "$TMP/metrics.json"

# --- success path: exit 0 on a minimal valid trace -----------------------
printf '{"traceEvents":[],"displayTimeUnit":"ms"}' > "$TMP/empty.trace.json"
expect monitor_empty_trace 0 monitor "$TMP/empty.trace.json" --quiet
expect analyze_empty_trace 0 analyze "$TMP/empty.trace.json" --quiet

# Malformed rules files are runtime errors too.
printf 'rule bad bogus series above 1\n' > "$TMP/bad.rules"
expect monitor_bad_rules 1 monitor "$TMP/empty.trace.json" --rules "$TMP/bad.rules"

# --- slo subcommand -------------------------------------------------------
# Usage: needs both the serve report operand and --spec.
expect slo_missing_operand 2 slo
expect_usage_on_stderr slo_missing_operand_usage slo
expect slo_unknown_flag 2 slo serve.json --bogus
expect slo_flag_missing_value 2 slo serve.json --spec

printf 'slo * latency p99 below 40\nslo * admission above 0.5\n' > "$TMP/ok.slo"
expect slo_missing_spec 2 slo "$TMP/serve.json"

# Runtime errors: unreadable/malformed/wrong-schema inputs, malformed specs.
expect slo_nonexistent_input 1 slo "$TMP/no-such-serve.json" --spec "$TMP/ok.slo"
expect slo_malformed_input 1 slo "$TMP/garbage.json" --spec "$TMP/ok.slo"
expect slo_wrong_schema 1 slo "$TMP/metrics.json" --spec "$TMP/ok.slo"

printf '{"schema":"multihit.serve.v1","jobs":[{"tenant":"t","arrival":0,"finish":1,"outcome":"completed","cache_hit":false,"latency":1}]}' \
  > "$TMP/serve.json"
printf 'slo t latency p99 beneath 40\n' > "$TMP/bad.slo"
expect slo_bad_spec 1 slo "$TMP/serve.json" --spec "$TMP/bad.slo"

# Verdicts: exit 0 when every objective holds, exit 1 on any violation.
expect slo_clean 0 slo "$TMP/serve.json" --spec "$TMP/ok.slo" --quiet
printf 'slo t latency p99 below 0.5\n' > "$TMP/tight.slo"
expect slo_violation 1 slo "$TMP/serve.json" --spec "$TMP/tight.slo" --quiet

# --- hostprof subcommand --------------------------------------------------
expect hostprof_missing_operand 2 hostprof
expect_usage_on_stderr hostprof_missing_operand_usage hostprof
expect hostprof_unknown_flag 2 hostprof hostprof.json --bogus
expect hostprof_flag_missing_value 2 hostprof hostprof.json --report-out
expect hostprof_extra_operand 2 hostprof a.json b.json

# Runtime errors: unreadable/malformed inputs and wrong-schema documents.
expect hostprof_nonexistent_input 1 hostprof "$TMP/no-such-hostprof.json"
expect hostprof_malformed_input 1 hostprof "$TMP/garbage.json"
expect hostprof_wrong_schema 1 hostprof "$TMP/metrics.json"

# A minimal (empty-run) document replays cleanly; corrupting a total must
# trip the reconciliation pass (exit 1), not render a wrong report.
zero_calls='{"popcount_row":0,"and2":0,"and3":0,"and4":0,"and_rows":0,"and_rows_inplace":0,"andnot2":0,"andnot_rows":0}'
hostprof_doc() {
  printf '{"schema":"multihit.hostprof.v1","workload":{"hits":2,"scheme":"scheme2","lambda_end":0,"chunk_size":64,"workers":0,"sweeps":0,"bitops_counted":true},"totals":{"chunks":%s,"claims":0,"empty_polls":0,"candidates":0,"combinations":0,"arena_peak_words_max":0,"bitops_calls":%s},"backend":{"name":"scalar"},"wallclock":{"wall_seconds":0,"eval_seconds":0,"claim_seconds":0,"merge_seconds":0,"tail_idle_seconds":0},"workers":[],"sweeps":[]}' \
    "$1" "$zero_calls"
}
hostprof_doc 0 > "$TMP/empty.hostprof.json"
expect hostprof_empty_profile 0 hostprof "$TMP/empty.hostprof.json" --quiet
hostprof_doc 5 > "$TMP/corrupt.hostprof.json"
expect hostprof_corrupted_totals 1 hostprof "$TMP/corrupt.hostprof.json" --quiet

# --- diff subcommand ------------------------------------------------------
# Usage: exactly two run operands.
expect diff_missing_operands 2 diff
expect_usage_on_stderr diff_missing_operands_usage diff
expect diff_one_operand 2 diff a.json
expect diff_extra_operand 2 diff a.json b.json c.json
expect diff_unknown_flag 2 diff a.json b.json --bogus
expect diff_flag_missing_value 2 diff a.json b.json --tol

# Runtime errors: unreadable/malformed/undiffable inputs, malformed tol specs.
expect diff_nonexistent_input 1 diff "$TMP/no-such-run.json" "$TMP/no-such-run.json"
expect diff_malformed_input 1 diff "$TMP/garbage.json" "$TMP/garbage.json"
printf '{"schema":"bogus.v9"}' > "$TMP/unknown.json"
expect diff_unknown_schema 1 diff "$TMP/unknown.json" "$TMP/unknown.json"
# A lone Chrome trace has no comparable series — refused, not vacuously passed.
expect diff_undiffable_artifact 1 diff "$TMP/empty.trace.json" "$TMP/empty.trace.json"

printf '{"schema":"multihit.metrics.v1","counters":[{"name":"engine.iterations","labels":{},"value":5}],"gauges":[],"histograms":[]}' \
  > "$TMP/metrics_a.json"
printf 'tol metrics.* sideways 0.1\n' > "$TMP/bad.tol"
expect diff_bad_tol 1 diff "$TMP/metrics_a.json" "$TMP/metrics_a.json" --tol "$TMP/bad.tol"

# Verdicts: a self-diff is clean (exit 0); a planted counter regression is
# not (exit 1) — unless a committed tolerance rule covers it (exit 0 again).
expect diff_self 0 diff "$TMP/metrics_a.json" "$TMP/metrics_a.json" --quiet
printf '{"schema":"multihit.metrics.v1","counters":[{"name":"engine.iterations","labels":{},"value":7}],"gauges":[],"histograms":[]}' \
  > "$TMP/metrics_b.json"
expect diff_regression 1 diff "$TMP/metrics_a.json" "$TMP/metrics_b.json" --quiet
printf 'tol metrics.counter.engine.* rel 0.5\n' > "$TMP/cover.tol"
expect diff_tolerated 0 diff "$TMP/metrics_a.json" "$TMP/metrics_b.json" \
  --tol "$TMP/cover.tol" --quiet

if [ "$fails" -ne 0 ]; then
  echo "$fails CLI contract check(s) failed" >&2
  exit 1
fi
echo "obstool CLI contract: all checks passed"
