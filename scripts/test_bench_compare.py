#!/usr/bin/env python3
"""Self-test for scripts/bench_compare.py — exit-code contract over fixtures.

bench_compare.py is itself a CI gate, so its exit codes ARE its API: ci.sh and
perf-gate jobs branch on them. This test builds small multihit.bench.v1
fixtures in a tempdir and asserts the full matrix:

  valid record matching its baseline          -> 0 (default and --strict)
  bad schema / unreadable JSON                -> 1 (always)
  drifting series (worse direction)           -> 0 default, 2 --strict
  improved series (better direction)          -> 0 default, 2 --strict
  disappeared series (in baseline, not run)   -> 0 default, 2 --strict
  new series (in run, not baseline)           -> 0 default + NEW warn, 2 --strict

Deltas are signed ((value-base)/|base|), so the output also pins the
direction: a time_* series moving 10 -> 15 must print +50.00% and DRIFT,
10 -> 5 must print -50.00% and improved.

Run directly (`python3 scripts/test_bench_compare.py`) or via ctest
(`ctest -R bench_compare`). No third-party dependencies.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "bench_compare.py")

EMPTY_METRICS = {"schema": "multihit.metrics.v1", "counters": [], "gauges": [],
                 "histograms": []}


def bench_record(name: str, series: dict[str, float]) -> dict:
    return {
        "schema": "multihit.bench.v1",
        "bench": name,
        "series": [{"name": k, "value": v} for k, v in series.items()],
        "metrics": EMPTY_METRICS,
    }


def write_json(path: str, doc: dict) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle)
    return path


def run(args: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, SCRIPT, *args],
                          capture_output=True, text=True)


def check(label: str, proc: subprocess.CompletedProcess, expect_code: int,
          expect_in_output: list[str] | None = None) -> list[str]:
    failures = []
    if proc.returncode != expect_code:
        failures.append(f"{label}: exit {proc.returncode}, expected {expect_code}\n"
                        f"  stdout: {proc.stdout!r}\n  stderr: {proc.stderr!r}")
    combined = proc.stdout + proc.stderr
    for needle in expect_in_output or []:
        if needle not in combined:
            failures.append(f"{label}: output missing {needle!r}\n"
                            f"  stdout: {proc.stdout!r}\n  stderr: {proc.stderr!r}")
    for line in failures:
        print(f"FAIL {line}", file=sys.stderr)
    if not failures:
        print(f"ok   {label}")
    return failures


def main() -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="bench_compare_test.") as tmp:
        baseline_dir = os.path.join(tmp, "baselines")
        os.makedirs(baseline_dir)
        write_json(os.path.join(baseline_dir, "BENCH_scaling.json"),
                   bench_record("scaling", {"time_100": 10.0, "time_1000": 1.2}))
        base_args = ["--baseline-dir", baseline_dir]

        # 1. Valid record, matching baseline: clean pass in both modes.
        matching = write_json(os.path.join(tmp, "BENCH_match.json"),
                              bench_record("scaling",
                                           {"time_100": 10.0, "time_1000": 1.2}))
        failures += check("matching/default", run([*base_args, matching]), 0,
                          ["valid multihit.bench.v1", "ok   "])
        failures += check("matching/strict",
                          run([*base_args, "--strict", matching]), 0)

        # 2. Schema violations: always exit 1, strict or not.
        bad_schema = write_json(os.path.join(tmp, "BENCH_bad.json"),
                                {"schema": "bogus.v9", "bench": "scaling",
                                 "series": [{"name": "t", "value": 1.0}],
                                 "metrics": EMPTY_METRICS})
        failures += check("bad-schema/default", run([*base_args, bad_schema]), 1,
                          ["ERROR"])
        not_json = os.path.join(tmp, "BENCH_garbage.json")
        with open(not_json, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        failures += check("not-json/default", run([*base_args, not_json]), 1,
                          ["ERROR"])

        # 3. Drift beyond the 10% default threshold: warn by default, 2 strict.
        drifting = write_json(os.path.join(tmp, "BENCH_drift.json"),
                              bench_record("scaling",
                                           {"time_100": 15.0, "time_1000": 1.2}))
        failures += check("drift/default", run([*base_args, drifting]), 0,
                          ["DRIFT", "+50.00%", "drifted beyond"])
        failures += check("drift/strict",
                          run([*base_args, "--strict", drifting]), 2, ["DRIFT"])
        failures += check("drift/wide-threshold",
                          run([*base_args, "--strict", "--threshold", "0.60",
                               drifting]), 0)

        # 3b. The same magnitude of movement in the *better* direction for the
        # series (time_*: lower is better) is classed improved — friendlier
        # label, same strict-mode gate: the baseline is stale either way.
        improving = write_json(os.path.join(tmp, "BENCH_improve.json"),
                               bench_record("scaling",
                                            {"time_100": 5.0, "time_1000": 1.2}))
        failures += check("improved/default", run([*base_args, improving]), 0,
                          ["improved", "-50.00%"])
        failures += check("improved/strict",
                          run([*base_args, "--strict", improving]), 2,
                          ["improved"])
        # 3c. Higher-is-better names flip the labels: a throughput gain is
        # improved, not DRIFT.
        write_json(os.path.join(baseline_dir, "BENCH_rates.json"),
                   bench_record("rates", {"combos_per_sec": 100.0}))
        faster = write_json(os.path.join(tmp, "BENCH_rates.json"),
                            bench_record("rates", {"combos_per_sec": 150.0}))
        failures += check("higher-better/default", run([*base_args, faster]), 0,
                          ["improved", "+50.00%"])

        # 4. A baselined series that vanished from the run counts as drift.
        disappeared = write_json(os.path.join(tmp, "BENCH_gone.json"),
                                 bench_record("scaling", {"time_100": 10.0}))
        failures += check("disappeared/default", run([*base_args, disappeared]), 0,
                          ["disappeared"])
        failures += check("disappeared/strict",
                          run([*base_args, "--strict", disappeared]), 2,
                          ["disappeared"])

        # 5. A run series absent from the baseline is reported as NEW; strict
        # refuses it until the baseline is updated.
        new_series = write_json(
            os.path.join(tmp, "BENCH_new.json"),
            bench_record("scaling", {"time_100": 10.0, "time_1000": 1.2,
                                     "time_2000": 0.7}))
        failures += check("new-series/default", run([*base_args, new_series]), 0,
                          ["NEW", "no baseline entry"])
        failures += check("new-series/strict",
                          run([*base_args, "--strict", new_series]), 2, ["NEW"])

        # 6. A record whose bench has no baseline file at all still passes
        # (warn-and-skip), even under --strict.
        unmatched = write_json(os.path.join(tmp, "BENCH_other.json"),
                               bench_record("nobaseline", {"t": 1.0}))
        failures += check("no-baseline-file/strict",
                          run([*base_args, "--strict", unmatched]), 0,
                          ["no baseline at"])

    if failures:
        print(f"{len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("all bench_compare self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
