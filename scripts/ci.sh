#!/usr/bin/env bash
# Full local CI: build and run the test suite under every preset in
# CMakePresets.json — the optimized build, the ASan+UBSan build, and the
# TSan build (whose test preset narrows to the concurrency-heavy suites:
# the host-threaded sweep, chunk queue, arenas, bitops dispatch, and the
# host profiler). Any sanitizer report aborts the run
# (-fno-sanitize-recover=all turns UBSan findings into hard failures).
#
# Usage: scripts/ci.sh [jobs]   (default: nproc)

set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${1:-$(nproc)}"

for preset in default asan tsan; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$jobs"
  echo "=== [$preset] test ==="
  ctest --preset "$preset" -j "$jobs"
done

# Instrumented bench trajectory: run the BENCH-emitting benches from the
# optimized build, validate the multihit.bench.v1 records, and diff them
# against the committed baselines (warn-only — modeled-time refinements are
# legitimate; pass --strict here to turn drift into a failure).
bench_dir="build/bench_records"
mkdir -p "$bench_dir"
echo "=== bench records ==="
for bench in fig4_scaling fig6_util_2x2 fig7_util_3x1 fig8_comm_overhead \
             tab_fault_overhead tab_detection_latency; do
  MULTIHIT_BENCH_DIR="$bench_dir" "build/bench/$bench" > /dev/null
done
# fig5 is a google-benchmark binary; skip the measured part (filter matches
# nothing) and keep only the modeled table, which emits the BENCH record.
MULTIHIT_BENCH_DIR="$bench_dir" build/bench/fig5_memopt \
  --benchmark_filter='NOTHING_MATCHES' > /dev/null
if command -v python3 > /dev/null; then
  python3 scripts/bench_compare.py "$bench_dir"/BENCH_*.json
else
  echo "python3 not found; skipping BENCH schema validation" >&2
fi

# Bit-kernel gate (strict, not warn-only): bench_bitops exits non-zero unless
# every backend is bit-identical to scalar AND the AVX2 4-ary AND+popcount
# clears 2x at paper-scale row lengths; its BENCH series are deterministic
# booleans, so --strict pins them against the committed baseline without
# tripping on machine-dependent wall-clock (which lands in metrics only).
echo "=== bitops backend gate ==="
MULTIHIT_BENCH_DIR="$bench_dir" build/bench/bench_bitops > /dev/null
if command -v python3 > /dev/null; then
  python3 scripts/bench_compare.py --strict "$bench_dir"/BENCH_bench_bitops.json
fi
obs_dir="build/obs_smoke"
mkdir -p "$obs_dir"
# Forcing the backend must not change a single byte of any run artifact:
# trace, metrics, and stdout of the functional distributed run are compared
# across MULTIHIT_BITOPS=scalar and =auto (auto picks SIMD where supported).
for backend in scalar auto; do
  MULTIHIT_BITOPS="$backend" build/examples/brca_scaleout 2 \
    --trace-out "$obs_dir/bitops_$backend.trace.json" \
    --metrics-out "$obs_dir/bitops_$backend.metrics.json" \
    > "$obs_dir/bitops_$backend.stdout"
done
cmp "$obs_dir/bitops_scalar.trace.json" "$obs_dir/bitops_auto.trace.json"
cmp "$obs_dir/bitops_scalar.metrics.json" "$obs_dir/bitops_auto.metrics.json"
# stdout echoes the per-backend artifact paths; normalize that token, then
# require everything else byte-identical.
for backend in scalar auto; do
  sed "s/bitops_$backend\./bitops_BACKEND./g" "$obs_dir/bitops_$backend.stdout" \
    > "$obs_dir/bitops_$backend.stdout.norm"
done
cmp "$obs_dir/bitops_scalar.stdout.norm" "$obs_dir/bitops_auto.stdout.norm"
# The host-threaded sweep prints real wall-clock (not byte-comparable), but
# the binary itself exits non-zero unless its selections are identical to
# the serial and distributed references — run it under both backends.
for backend in scalar auto; do
  MULTIHIT_BITOPS="$backend" build/examples/brca_scaleout 1 --host-threads 2 > /dev/null
done
echo "bitops backends byte-identical (scalar vs auto), threaded sweep pinned"

# Host-profiler gate (strict): bench_hostprof runs the Part 1b sweep plain
# and profiled and exits non-zero unless selections are bit-identical, the
# report replays byte-identically, and the measured profiler overhead stays
# under 5%. Its BENCH series are those booleans, so --strict pins them; the
# raw wall-clock lands in gauges only.
echo "=== host profiler gate ==="
MULTIHIT_BENCH_DIR="$bench_dir" build/bench/bench_hostprof > /dev/null
if command -v python3 > /dev/null; then
  python3 scripts/bench_compare.py --strict "$bench_dir"/BENCH_hostprof.json
fi
# Profiling must be a pure observer: attaching --host-profile-out cannot
# change a byte of the sweep's selections (the binary itself enforces that
# against the serial reference), and the multihit.hostprof.v1 document must
# replay byte-identically offline. Deterministic projections must also agree
# across repeat runs AND across bitops backends — wall clock is quarantined.
hostprof_dir="build/hostprof_smoke"
mkdir -p "$hostprof_dir"
for backend in scalar auto; do
  for run in 1 2; do
    MULTIHIT_BITOPS="$backend" build/examples/brca_scaleout 1 --host-threads 4 \
      --host-profile-out "$hostprof_dir/${backend}_$run.hostprof.json" > /dev/null
    build/examples/multihit-obstool hostprof \
      "$hostprof_dir/${backend}_$run.hostprof.json" \
      --report-out "$hostprof_dir/${backend}_$run.replay.json" \
      --deterministic-out "$hostprof_dir/${backend}_$run.det.json" > /dev/null
    cmp "$hostprof_dir/${backend}_$run.hostprof.json" \
        "$hostprof_dir/${backend}_$run.replay.json"
  done
done
cmp "$hostprof_dir/scalar_1.det.json" "$hostprof_dir/scalar_2.det.json"
cmp "$hostprof_dir/auto_1.det.json" "$hostprof_dir/auto_2.det.json"
cmp "$hostprof_dir/scalar_1.det.json" "$hostprof_dir/auto_1.det.json"
echo "host profiler overhead gated, replay byte-identical, projections pinned across backends"

# Trace-analysis smoke: a faulty instrumented run, the obstool pipeline on
# its artifacts, and the determinism gate — analyzing the same trace twice
# (and re-running the instrumented binary) must produce byte-identical
# reports and folded files. Any parse/schema error fails (obstool exits 1).
obs_dir="build/obs_smoke"
mkdir -p "$obs_dir"
echo "=== trace analysis smoke ==="
for run in 1 2; do
  build/examples/brca_scaleout 4 --crash 1@0 --checkpoint 2 \
    --trace-out "$obs_dir/run$run.trace.json" \
    --metrics-out "$obs_dir/run$run.metrics.json" \
    --report-out "$obs_dir/run$run.report.json" > /dev/null
done
cmp "$obs_dir/run1.trace.json" "$obs_dir/run2.trace.json"
cmp "$obs_dir/run1.report.json" "$obs_dir/run2.report.json"
for pass in 1 2; do
  build/examples/multihit-obstool analyze \
    "$obs_dir/run1.trace.json" "$obs_dir/run1.metrics.json" \
    --report-out "$obs_dir/pass$pass.report.json" \
    --folded-out "$obs_dir/pass$pass.folded" > /dev/null
done
cmp "$obs_dir/pass1.report.json" "$obs_dir/pass2.report.json"
cmp "$obs_dir/pass1.folded" "$obs_dir/pass2.folded"
build/examples/multihit-obstool analyze "$obs_dir/run1.trace.json"
echo "trace analysis deterministic (in-process and offline)"

# Kernel-profiler smoke: an instrumented run with --profile-out, the obstool
# profile pipeline reconciling the profile against the run's trace and
# metrics (any mismatch exits 1), and the same determinism gates — both the
# instrumented binary and the offline renderer must be byte-stable.
echo "=== kernel profile smoke ==="
for run in 1 2; do
  build/examples/brca_scaleout 4 --crash 1@0 --checkpoint 2 \
    --trace-out "$obs_dir/prof$run.trace.json" \
    --metrics-out "$obs_dir/prof$run.metrics.json" \
    --profile-out "$obs_dir/prof$run.profile.json" > /dev/null
done
cmp "$obs_dir/prof1.profile.json" "$obs_dir/prof2.profile.json"
for pass in 1 2; do
  build/examples/multihit-obstool profile \
    "$obs_dir/prof1.profile.json" "$obs_dir/prof1.trace.json" \
    "$obs_dir/prof1.metrics.json" \
    --report-out "$obs_dir/prof_pass$pass.report.json" \
    --roofline-out "$obs_dir/prof_pass$pass.roofline.csv" \
    --heatmap-out "$obs_dir/prof_pass$pass.heatmap.csv" > /dev/null
done
cmp "$obs_dir/prof_pass1.report.json" "$obs_dir/prof_pass2.report.json"
cmp "$obs_dir/prof_pass1.roofline.csv" "$obs_dir/prof_pass2.roofline.csv"
cmp "$obs_dir/prof_pass1.heatmap.csv" "$obs_dir/prof_pass2.heatmap.csv"
# --profile-out without any instrumented output must be rejected, not
# silently produce an empty profile.
if build/examples/brca_scaleout 4 --profile-out "$obs_dir/reject.profile.json" \
    > /dev/null 2>&1; then
  echo "ERROR: --profile-out without instrumentation should fail" >&2
  exit 1
fi
echo "kernel profile deterministic and reconciled"

# Health-monitor smoke: inject one crash, require exactly one dead-rank
# incident, score the incidents against the emitted ground truth (obstool
# exits 1 on anything short of full recall / zero false positives), and gate
# the multihit.health.v1 byte-identity invariant — the in-process document
# (--health-out, which monitors the Chrome-replayed trace) must be
# byte-identical to an offline `obstool monitor` replay of the same trace.
echo "=== health monitor smoke ==="
build/examples/brca_scaleout 4 --crash 1@1 --checkpoint 2 \
  --trace-out "$obs_dir/health.trace.json" \
  --metrics-out "$obs_dir/health.metrics.json" \
  --health-out "$obs_dir/inproc.health.json" \
  --truth-out "$obs_dir/health.truth.json" > /dev/null
build/examples/multihit-obstool monitor \
  "$obs_dir/health.trace.json" "$obs_dir/health.metrics.json" \
  --health-out "$obs_dir/offline.health.json" \
  --truth "$obs_dir/health.truth.json" > "$obs_dir/health.summary.txt"
cmp "$obs_dir/inproc.health.json" "$obs_dir/offline.health.json"
if [ "$(grep -c 'dead_rank: 1 incident' "$obs_dir/health.summary.txt")" -ne 1 ]; then
  echo "ERROR: expected exactly one dead-rank incident:" >&2
  cat "$obs_dir/health.summary.txt" >&2
  exit 1
fi
echo "health monitor byte-identical (in-process and offline), truth score perfect"

# Job-service smoke: replay one seeded multi-tenant trace (24 jobs, bursty
# arrivals, cache invalidations) twice per bitops backend. The
# multihit.serve.v1 report, Chrome trace, and metrics snapshot must be
# byte-identical across runs AND across backends, and the driver itself
# exits non-zero unless every served job's selections are bit-identical to a
# standalone single-job run. The latency/throughput BENCH series are fully
# modeled (simulated clock), so --strict pins them against the committed
# baseline exactly — a scheduling or admission regression shows up as drift.
echo "=== job service smoke ==="
serve_dir="build/serve_smoke"
mkdir -p "$serve_dir"
for backend in scalar auto; do
  for run in 1 2; do
    MULTIHIT_BITOPS="$backend" MULTIHIT_BENCH_DIR="$bench_dir" \
      build/examples/multihit-serve --mix bursty --jobs 24 --seed 7 \
      --invalidate-rate 0.2 --bench \
      --slo-spec examples/serve.slo \
      --slo-out "$serve_dir/${backend}_$run.slo.json" \
      --out "$serve_dir/${backend}_$run.serve.json" \
      --trace-out "$serve_dir/${backend}_$run.trace.json" \
      --metrics-out "$serve_dir/${backend}_$run.metrics.json" > /dev/null
  done
done
cmp "$serve_dir/scalar_1.serve.json" "$serve_dir/scalar_2.serve.json"
cmp "$serve_dir/auto_1.serve.json" "$serve_dir/auto_2.serve.json"
cmp "$serve_dir/scalar_1.serve.json" "$serve_dir/auto_1.serve.json"
cmp "$serve_dir/scalar_1.trace.json" "$serve_dir/auto_1.trace.json"
cmp "$serve_dir/scalar_1.metrics.json" "$serve_dir/auto_1.metrics.json"
cmp "$serve_dir/scalar_1.slo.json" "$serve_dir/scalar_2.slo.json"
cmp "$serve_dir/scalar_1.slo.json" "$serve_dir/auto_1.slo.json"
if command -v python3 > /dev/null; then
  python3 scripts/bench_compare.py --strict "$bench_dir"/BENCH_serve_latency.json
  python3 scripts/bench_compare.py --strict "$bench_dir"/BENCH_serve_slo.json
fi
echo "job service byte-identical (runs and backends), served answers pinned standalone"

# SLO smoke: the multihit.slo.v1 verdict layer over the serve run above.
#  1. Offline replay identity: `obstool slo` over the saved multihit.serve.v1
#     report must reproduce the in-process --slo-out document byte for byte,
#     and the clean trace passes (exit 0).
#  2. Detector ground truth: every planted --scenario pathology fires its
#     monitor detector class at the serve cadence, and the clean trace fires
#     nothing. overload/starvation/burn also fail the offline verdict
#     (exit 1); thrash burns fleet efficiency without moving user-visible
#     latency or admission, which is exactly why cache_thrash exists.
echo "=== serve SLO smoke ==="
build/examples/multihit-obstool slo "$serve_dir/scalar_1.serve.json" \
  --spec examples/serve.slo --report-out "$serve_dir/replay.slo.json" > /dev/null
cmp "$serve_dir/scalar_1.slo.json" "$serve_dir/replay.slo.json"
build/examples/multihit-obstool monitor "$serve_dir/scalar_1.trace.json" \
  --sample-every 0.5 --window-samples 256 --slo-spec examples/serve.slo \
  --summary > "$serve_dir/clean.health.txt"
if grep -q 'incident(s)' "$serve_dir/clean.health.txt"; then
  echo "ERROR: clean serve trace fired incidents:" >&2
  cat "$serve_dir/clean.health.txt" >&2
  exit 1
fi
for scenario in overload starvation burn thrash; do
  build/examples/multihit-serve --jobs 24 --seed 7 --scenario "$scenario" \
    --out "$serve_dir/$scenario.serve.json" \
    --trace-out "$serve_dir/$scenario.trace.json" > /dev/null
  if build/examples/multihit-obstool slo "$serve_dir/$scenario.serve.json" \
    --spec examples/serve.slo --quiet > /dev/null 2>&1; then
    verdict=0
  else
    verdict=1
  fi
  case "$scenario" in
    thrash) want_verdict=0 detector=cache_thrash ;;
    overload) want_verdict=1 detector=queue_saturation ;;
    starvation) want_verdict=1 detector=tenant_starvation ;;
    burn) want_verdict=1 detector=slo_slow_burn ;;
  esac
  if [ "$verdict" -ne "$want_verdict" ]; then
    echo "ERROR: $scenario: obstool slo exit $verdict, want $want_verdict" >&2
    exit 1
  fi
  build/examples/multihit-obstool monitor "$serve_dir/$scenario.trace.json" \
    --sample-every 0.5 --window-samples 256 --slo-spec examples/serve.slo \
    --summary > "$serve_dir/$scenario.health.txt"
  if ! grep -q "$detector: .* incident" "$serve_dir/$scenario.health.txt"; then
    echo "ERROR: $scenario did not fire $detector:" >&2
    cat "$serve_dir/$scenario.health.txt" >&2
    exit 1
  fi
done
echo "serve SLO byte-identical offline replay, 4/4 planted pathologies detected, clean trace silent"

# Cross-run regression gate: run manifests + `obstool diff`.
#  1. Self-identity: two identical equi-area runs (--artifacts-dir writes the
#     standard artifact set plus a multihit.run.v1 manifest) must diff clean
#     (exit 0), and the multihit.diff.v1 report must be byte-identical across
#     repeated diff invocations.
#  2. Backend swap: scalar vs auto with a host-threaded sweep must diff clean
#     under the committed examples/regression.tol spec — every simulated
#     series exact, wall clock confined to tolerated/informational sections.
#  3. Planted regression: equi-area vs equi-distance must diff dirty (exit 1)
#     with the makespan delta attributed to phase×rank cells, and the dirty
#     report must be byte-identical across invocations too.
#  4. bench_diff pins the engine's own invariants (attribution exactness,
#     round-trip identity) against the committed baseline under --strict.
echo "=== cross-run diff gate ==="
diff_dir="build/diff_smoke"
rm -rf "$diff_dir"
mkdir -p "$diff_dir"
for run in ea_1 ea_2; do
  build/examples/brca_scaleout 2 --artifacts-dir "$diff_dir/$run" > /dev/null
done
build/examples/brca_scaleout 2 --scheduler ed --artifacts-dir "$diff_dir/ed_1" > /dev/null
build/examples/multihit-obstool diff \
  "$diff_dir/ea_1/manifest.json" "$diff_dir/ea_2/manifest.json" \
  --report-out "$diff_dir/self.diff.json" --summary
for backend in scalar auto; do
  MULTIHIT_BITOPS="$backend" build/examples/brca_scaleout 2 --host-threads 2 \
    --artifacts-dir "$diff_dir/$backend" > /dev/null
done
build/examples/multihit-obstool diff \
  "$diff_dir/scalar/manifest.json" "$diff_dir/auto/manifest.json" \
  --tol examples/regression.tol --summary
for pass in 1 2; do
  if build/examples/multihit-obstool diff \
    "$diff_dir/ea_1/manifest.json" "$diff_dir/ed_1/manifest.json" \
    --report-out "$diff_dir/sched_$pass.diff.json" --quiet > /dev/null 2>&1; then
    echo "ERROR: equi-area vs equi-distance should diff dirty" >&2
    exit 1
  fi
done
cmp "$diff_dir/sched_1.diff.json" "$diff_dir/sched_2.diff.json"
grep -q 'attributed to' "$diff_dir/sched_1.diff.json"
MULTIHIT_BENCH_DIR="$bench_dir" build/bench/bench_diff > /dev/null
if command -v python3 > /dev/null; then
  python3 scripts/bench_compare.py --strict "$bench_dir"/BENCH_diff.json
fi
echo "cross-run diff gate green (self clean, backend swap tolerated, scheduler swap attributed)"

# The registry's lone 2-hit type once crashed cancer_panel (a 4-hit kernel's
# ranks unranked as 2-hit combinations → wild gene indices); the default
# panel loop only covers hits >= 4, so drive the BRCA path explicitly.
echo "=== cancer panel smoke ==="
build/examples/cancer_panel BRCA > /dev/null
build/examples/cancer_panel > /dev/null
echo "cancer panel green (2-hit BRCA path included)"

echo "=== all presets green ==="
