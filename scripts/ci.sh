#!/usr/bin/env bash
# Full local CI: build and run the test suite under every preset in
# CMakePresets.json — the optimized build and the ASan+UBSan build. Any
# sanitizer report aborts the run (-fno-sanitize-recover=all turns UBSan
# findings into hard failures).
#
# Usage: scripts/ci.sh [jobs]   (default: nproc)

set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${1:-$(nproc)}"

for preset in default asan; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$jobs"
  echo "=== [$preset] test ==="
  ctest --preset "$preset" -j "$jobs"
done

# Instrumented bench trajectory: run the BENCH-emitting benches from the
# optimized build, validate the multihit.bench.v1 records, and diff them
# against the committed baselines (warn-only — modeled-time refinements are
# legitimate; pass --strict here to turn drift into a failure).
bench_dir="build/bench_records"
mkdir -p "$bench_dir"
echo "=== bench records ==="
for bench in fig4_scaling fig8_comm_overhead tab_fault_overhead; do
  MULTIHIT_BENCH_DIR="$bench_dir" "build/bench/$bench" > /dev/null
done
if command -v python3 > /dev/null; then
  python3 scripts/bench_compare.py "$bench_dir"/BENCH_*.json
else
  echo "python3 not found; skipping BENCH schema validation" >&2
fi

echo "=== all presets green ==="
