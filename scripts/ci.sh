#!/usr/bin/env bash
# Full local CI: build and run the test suite under every preset in
# CMakePresets.json — the optimized build and the ASan+UBSan build. Any
# sanitizer report aborts the run (-fno-sanitize-recover=all turns UBSan
# findings into hard failures).
#
# Usage: scripts/ci.sh [jobs]   (default: nproc)

set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${1:-$(nproc)}"

for preset in default asan; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$jobs"
  echo "=== [$preset] test ==="
  ctest --preset "$preset" -j "$jobs"
done

echo "=== all presets green ==="
